package recovery

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/storage"
	"repro/internal/vclock"
)

// corruptStore wraps a Store and fails reads of chosen snapshots with
// storage.ErrCorrupt — the minimal stand-in for a store whose integrity
// checks reject damaged records.
type corruptStore struct {
	storage.Store
	bad map[[3]int]bool
}

func (c *corruptStore) markBad(proc, index, instance int) {
	if c.bad == nil {
		c.bad = make(map[[3]int]bool)
	}
	c.bad[[3]int{proc, index, instance}] = true
}

func (c *corruptStore) Get(proc, index, instance int) (storage.Snapshot, error) {
	if c.bad[[3]int{proc, index, instance}] {
		return storage.Snapshot{}, fmt.Errorf("%w: proc=%d index=%d instance=%d", storage.ErrCorrupt, proc, index, instance)
	}
	return c.Store.Get(proc, index, instance)
}

func (c *corruptStore) Latest(proc, index int) (storage.Snapshot, error) {
	s, err := c.Store.Latest(proc, index)
	if err != nil {
		return s, err
	}
	if c.bad[[3]int{proc, index, s.Instance}] {
		return storage.Snapshot{}, fmt.Errorf("%w: proc=%d index=%d instance=%d", storage.ErrCorrupt, proc, index, s.Instance)
	}
	return s, nil
}

func TestStraightCutDegradesToOlderInstance(t *testing.T) {
	st := &corruptStore{Store: storage.NewMemory()}
	save(t, st, 0, 1, 0, vclock.VC{1, 0})
	save(t, st, 0, 1, 1, vclock.VC{5, 2})
	save(t, st, 1, 1, 0, vclock.VC{0, 1})
	save(t, st, 1, 1, 1, vclock.VC{2, 5})
	// The best cut (instance 1) has a corrupt member: fall back to
	// instance 0 and report one degradation step.
	st.markBad(0, 1, 1)
	line, err := StraightCut(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	for p, s := range line.Snapshots {
		if s.Instance != 0 {
			t.Errorf("proc %d restored instance %d, want 0", p, s.Instance)
		}
	}
	if line.Degraded == 0 {
		t.Error("Degraded = 0, want > 0 (the best cut was skipped)")
	}
}

func TestStraightCutDegradesToOlderIndex(t *testing.T) {
	st := &corruptStore{Store: storage.NewMemory()}
	save(t, st, 0, 1, 0, vclock.VC{1, 0})
	save(t, st, 1, 1, 0, vclock.VC{0, 1})
	save(t, st, 0, 2, 0, vclock.VC{7, 5})
	save(t, st, 1, 2, 0, vclock.VC{5, 7})
	// The whole deeper index is unreadable: recovery must choose R_1.
	st.markBad(0, 2, 0)
	st.markBad(1, 2, 0)
	line, err := StraightCut(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	if line.Snapshots[0].CFGIndex != 1 {
		t.Errorf("chose index %d, want 1", line.Snapshots[0].CFGIndex)
	}
	if line.Degraded == 0 {
		t.Error("Degraded = 0, want > 0")
	}
}

func TestStraightCutAllCorruptReportsNoRecoveryLine(t *testing.T) {
	st := &corruptStore{Store: storage.NewMemory()}
	save(t, st, 0, 1, 0, vclock.VC{1, 0})
	save(t, st, 1, 1, 0, vclock.VC{0, 1})
	st.markBad(0, 1, 0)
	st.markBad(1, 1, 0)
	_, err := StraightCut(st, 2)
	if !errors.Is(err, ErrNoRecoveryLine) {
		t.Fatalf("err = %v, want ErrNoRecoveryLine (bottom of the degradation ladder)", err)
	}
}

func TestStraightCutCleanStoreReportsNoDegradation(t *testing.T) {
	st := storage.NewMemory()
	save(t, st, 0, 1, 0, vclock.VC{1, 0})
	save(t, st, 1, 1, 0, vclock.VC{0, 1})
	line, err := StraightCut(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	if line.Degraded != 0 {
		t.Errorf("Degraded = %d on a healthy store, want 0", line.Degraded)
	}
}

// TestStraightCutFallsBackOverCorruptDeltaChain is the end-to-end
// incremental-store corruption case: a rotted delta-chain base must
// surface storage.ErrCorrupt (never a bogus reconstruction) and recovery
// must degrade to an older, still-verifiable cut.
func TestStraightCutFallsBackOverCorruptDeltaChain(t *testing.T) {
	inc := storage.NewIncremental(8)
	saveSnap := func(proc, index, instance int, clock vclock.VC, x int) {
		t.Helper()
		err := inc.Save(storage.Snapshot{
			Proc: proc, CFGIndex: index, Instance: instance, Clock: clock,
			Vars: map[string]int{"x": x, "c": 42},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Two straight cuts per process; proc 0's records form a delta chain
	// rooted at (0, 1, #0).
	saveSnap(0, 1, 0, vclock.VC{1, 0}, 1)
	saveSnap(0, 2, 0, vclock.VC{3, 1}, 2)
	saveSnap(1, 1, 0, vclock.VC{0, 1}, 1)
	saveSnap(1, 2, 0, vclock.VC{1, 3}, 2)

	// Rot a variable the deltas never re-write: the base AND everything
	// chained on it must fail verification.
	if err := inc.Tamper(0, 1, 0, func(vars map[string]int) { vars["c"] = 999 }); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Get(0, 2, 0); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("reconstruction over rotted base = %v, want ErrCorrupt", err)
	}
	// The whole chain of proc 0 is poisoned: no cut remains.
	if _, err := StraightCut(inc, 2); !errors.Is(err, ErrNoRecoveryLine) {
		t.Fatalf("err = %v, want ErrNoRecoveryLine", err)
	}

	// Rot only the newest record instead: recovery degrades to R_1.
	inc2 := storage.NewIncremental(8)
	saveViaStore := func(st *storage.Incremental, proc, index, instance int, clock vclock.VC, x int) {
		t.Helper()
		err := st.Save(storage.Snapshot{
			Proc: proc, CFGIndex: index, Instance: instance, Clock: clock,
			Vars: map[string]int{"x": x, "c": 42},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	saveViaStore(inc2, 0, 1, 0, vclock.VC{1, 0}, 1)
	saveViaStore(inc2, 0, 2, 0, vclock.VC{3, 1}, 2)
	saveViaStore(inc2, 1, 1, 0, vclock.VC{0, 1}, 1)
	saveViaStore(inc2, 1, 2, 0, vclock.VC{1, 3}, 2)
	if err := inc2.Tamper(0, 2, 0, func(vars map[string]int) { vars["c"] = 999 }); err != nil {
		t.Fatal(err)
	}
	line, err := StraightCut(inc2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if line.Snapshots[0].CFGIndex != 1 {
		t.Fatalf("chose index %d, want degraded fallback to 1", line.Snapshots[0].CFGIndex)
	}
	if line.Degraded == 0 {
		t.Error("Degraded = 0, want > 0")
	}
	if line.Snapshots[0].Vars["x"] != 1 || line.Snapshots[0].Vars["c"] != 42 {
		t.Errorf("fallback cut vars = %v, want verified originals", line.Snapshots[0].Vars)
	}
}
