package recovery

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/storage"
	"repro/internal/vclock"
)

// corruptStore wraps a Store and fails reads of chosen snapshots with
// storage.ErrCorrupt — the minimal stand-in for a store whose integrity
// checks reject damaged records.
type corruptStore struct {
	storage.Store
	bad map[[3]int]bool
}

func (c *corruptStore) markBad(proc, index, instance int) {
	if c.bad == nil {
		c.bad = make(map[[3]int]bool)
	}
	c.bad[[3]int{proc, index, instance}] = true
}

func (c *corruptStore) Get(proc, index, instance int) (storage.Snapshot, error) {
	if c.bad[[3]int{proc, index, instance}] {
		return storage.Snapshot{}, fmt.Errorf("%w: proc=%d index=%d instance=%d", storage.ErrCorrupt, proc, index, instance)
	}
	return c.Store.Get(proc, index, instance)
}

func (c *corruptStore) Latest(proc, index int) (storage.Snapshot, error) {
	s, err := c.Store.Latest(proc, index)
	if err != nil {
		return s, err
	}
	if c.bad[[3]int{proc, index, s.Instance}] {
		return storage.Snapshot{}, fmt.Errorf("%w: proc=%d index=%d instance=%d", storage.ErrCorrupt, proc, index, s.Instance)
	}
	return s, nil
}

func TestStraightCutDegradesToOlderInstance(t *testing.T) {
	st := &corruptStore{Store: storage.NewMemory()}
	save(t, st, 0, 1, 0, vclock.VC{1, 0})
	save(t, st, 0, 1, 1, vclock.VC{5, 2})
	save(t, st, 1, 1, 0, vclock.VC{0, 1})
	save(t, st, 1, 1, 1, vclock.VC{2, 5})
	// The best cut (instance 1) has a corrupt member: fall back to
	// instance 0 and report one degradation step.
	st.markBad(0, 1, 1)
	line, err := StraightCut(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	for p, s := range line.Snapshots {
		if s.Instance != 0 {
			t.Errorf("proc %d restored instance %d, want 0", p, s.Instance)
		}
	}
	if line.Degraded == 0 {
		t.Error("Degraded = 0, want > 0 (the best cut was skipped)")
	}
}

func TestStraightCutDegradesToOlderIndex(t *testing.T) {
	st := &corruptStore{Store: storage.NewMemory()}
	save(t, st, 0, 1, 0, vclock.VC{1, 0})
	save(t, st, 1, 1, 0, vclock.VC{0, 1})
	save(t, st, 0, 2, 0, vclock.VC{7, 5})
	save(t, st, 1, 2, 0, vclock.VC{5, 7})
	// The whole deeper index is unreadable: recovery must choose R_1.
	st.markBad(0, 2, 0)
	st.markBad(1, 2, 0)
	line, err := StraightCut(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	if line.Snapshots[0].CFGIndex != 1 {
		t.Errorf("chose index %d, want 1", line.Snapshots[0].CFGIndex)
	}
	if line.Degraded == 0 {
		t.Error("Degraded = 0, want > 0")
	}
}

func TestStraightCutAllCorruptReportsNoRecoveryLine(t *testing.T) {
	st := &corruptStore{Store: storage.NewMemory()}
	save(t, st, 0, 1, 0, vclock.VC{1, 0})
	save(t, st, 1, 1, 0, vclock.VC{0, 1})
	st.markBad(0, 1, 0)
	st.markBad(1, 1, 0)
	_, err := StraightCut(st, 2)
	if !errors.Is(err, ErrNoRecoveryLine) {
		t.Fatalf("err = %v, want ErrNoRecoveryLine (bottom of the degradation ladder)", err)
	}
}

func TestStraightCutCleanStoreReportsNoDegradation(t *testing.T) {
	st := storage.NewMemory()
	save(t, st, 0, 1, 0, vclock.VC{1, 0})
	save(t, st, 1, 1, 0, vclock.VC{0, 1})
	line, err := StraightCut(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	if line.Degraded != 0 {
		t.Errorf("Degraded = %d on a healthy store, want 0", line.Degraded)
	}
}

// TestDegradationLadder pins the whole ladder on one fixed store: each
// rung corrupts strictly more than the one above it and must land exactly
// where the rung says — same chosen (index, instance), same Degraded
// count — down to the restart-from-initial-state floor. The store holds
// two indexes × two instances per process; the best cut is (2, #1).
func TestDegradationLadder(t *testing.T) {
	type target struct{ proc, index, instance int }
	rungs := []struct {
		name         string
		bad          []target
		wantIndex    int // chosen CFG index (when a line exists)
		wantInstance int
		wantDegraded int
		wantErr      error // non-nil: the rung is the ladder's floor
	}{
		{
			name:         "best-cut",
			wantIndex:    2,
			wantInstance: 1,
			wantDegraded: 0,
		},
		{
			name:         "older-instance",
			bad:          []target{{0, 2, 1}},
			wantIndex:    2,
			wantInstance: 0,
			wantDegraded: 1, // skipped: (2, #1)
		},
		{
			name: "older-index",
			bad:  []target{{0, 2, 1}, {1, 2, 0}},
			// Index 2 lost instance 1 on proc 0 and instance 0 on proc 1:
			// its frontier min(#0, #1) = #0 probes (2, #0) which is also
			// incomplete, then (2, #-1) ends the index; R_1 remains whole.
			wantIndex:    1,
			wantInstance: 1,
			wantDegraded: 2, // skipped: (2, #1) on proc 0's side, then (2, #0)
		},
		{
			name: "initial-state",
			bad: []target{
				{0, 1, 0}, {0, 1, 1}, {0, 2, 0}, {0, 2, 1},
			},
			wantErr: ErrNoRecoveryLine,
		},
	}
	for _, rung := range rungs {
		t.Run(rung.name, func(t *testing.T) {
			st := &corruptStore{Store: storage.NewMemory()}
			for p := 0; p < 2; p++ {
				q := 1 - p
				for idx := 1; idx <= 2; idx++ {
					for inst := 0; inst <= 1; inst++ {
						// Concurrent clocks that grow with (index, instance)
						// so deeper cuts always score higher.
						clk := vclock.VC{0, 0}
						clk[p] = uint64(10*idx + 5*inst + 2)
						clk[q] = uint64(10*idx + 5*inst + 1)
						save(t, st, p, idx, inst, clk)
					}
				}
			}
			for _, b := range rung.bad {
				st.markBad(b.proc, b.index, b.instance)
			}
			line, err := StraightCut(st, 2)
			if rung.wantErr != nil {
				if !errors.Is(err, rung.wantErr) {
					t.Fatalf("err = %v, want %v", err, rung.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			for p, s := range line.Snapshots {
				if s.CFGIndex != rung.wantIndex || s.Instance != rung.wantInstance {
					t.Errorf("proc %d restored (index %d, instance %d), want (%d, %d)",
						p, s.CFGIndex, s.Instance, rung.wantIndex, rung.wantInstance)
				}
			}
			if line.Degraded != rung.wantDegraded {
				t.Errorf("Degraded = %d, want %d", line.Degraded, rung.wantDegraded)
			}
		})
	}
}

// TestStraightCutFallsBackOverCorruptDeltaChain is the end-to-end
// incremental-store corruption case: a rotted delta-chain base must
// surface storage.ErrCorrupt (never a bogus reconstruction) and recovery
// must degrade to an older, still-verifiable cut.
func TestStraightCutFallsBackOverCorruptDeltaChain(t *testing.T) {
	inc := storage.NewIncremental(8)
	saveSnap := func(proc, index, instance int, clock vclock.VC, x int) {
		t.Helper()
		err := inc.Save(storage.Snapshot{
			Proc: proc, CFGIndex: index, Instance: instance, Clock: clock,
			Vars: map[string]int{"x": x, "c": 42},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Two straight cuts per process; proc 0's records form a delta chain
	// rooted at (0, 1, #0).
	saveSnap(0, 1, 0, vclock.VC{1, 0}, 1)
	saveSnap(0, 2, 0, vclock.VC{3, 1}, 2)
	saveSnap(1, 1, 0, vclock.VC{0, 1}, 1)
	saveSnap(1, 2, 0, vclock.VC{1, 3}, 2)

	// Rot a variable the deltas never re-write: the base AND everything
	// chained on it must fail verification.
	if err := inc.Tamper(0, 1, 0, func(vars map[string]int) { vars["c"] = 999 }); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Get(0, 2, 0); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("reconstruction over rotted base = %v, want ErrCorrupt", err)
	}
	// The whole chain of proc 0 is poisoned: no cut remains.
	if _, err := StraightCut(inc, 2); !errors.Is(err, ErrNoRecoveryLine) {
		t.Fatalf("err = %v, want ErrNoRecoveryLine", err)
	}

	// Rot only the newest record instead: recovery degrades to R_1.
	inc2 := storage.NewIncremental(8)
	saveViaStore := func(st *storage.Incremental, proc, index, instance int, clock vclock.VC, x int) {
		t.Helper()
		err := st.Save(storage.Snapshot{
			Proc: proc, CFGIndex: index, Instance: instance, Clock: clock,
			Vars: map[string]int{"x": x, "c": 42},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	saveViaStore(inc2, 0, 1, 0, vclock.VC{1, 0}, 1)
	saveViaStore(inc2, 0, 2, 0, vclock.VC{3, 1}, 2)
	saveViaStore(inc2, 1, 1, 0, vclock.VC{0, 1}, 1)
	saveViaStore(inc2, 1, 2, 0, vclock.VC{1, 3}, 2)
	if err := inc2.Tamper(0, 2, 0, func(vars map[string]int) { vars["c"] = 999 }); err != nil {
		t.Fatal(err)
	}
	line, err := StraightCut(inc2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if line.Snapshots[0].CFGIndex != 1 {
		t.Fatalf("chose index %d, want degraded fallback to 1", line.Snapshots[0].CFGIndex)
	}
	if line.Degraded == 0 {
		t.Error("Degraded = 0, want > 0")
	}
	if line.Snapshots[0].Vars["x"] != 1 || line.Snapshots[0].Vars["c"] != 42 {
		t.Errorf("fallback cut vars = %v, want verified originals", line.Snapshots[0].Vars)
	}
}
