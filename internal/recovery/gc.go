package recovery

import (
	"fmt"

	"repro/internal/storage"
)

// GC garbage-collects obsolete checkpoints: for every checkpoint index
// present on all n processes, it keeps the newest `keep` instances at or
// below the common frontier (the minimum of the per-process latest
// instances — the instances StraightCut can choose from) and deletes
// everything older. Instances above the frontier are always kept: a
// process that is ahead may still be rolled back to them.
//
// With keep=1 only the current recovery line (and anything newer) remains
// — the steady-state footprint of the coordination-free scheme, which
// never rolls back past the latest straight cut.
//
// GC deletes interior records and therefore requires a store with random
// deletion (Memory, File); the delta-encoded Incremental store refuses
// interior deletes and is reported as an error.
func GC(st storage.Store, n, keep int) (deleted int, err error) {
	if keep < 1 {
		return 0, fmt.Errorf("recovery: GC keep must be >= 1, got %d", keep)
	}
	indexes, err := st.Indexes(n)
	if err != nil {
		return 0, err
	}
	for _, idx := range indexes {
		frontier := -1
		for p := 0; p < n; p++ {
			latest, err := st.Latest(p, idx)
			if err != nil {
				return deleted, err
			}
			if frontier < 0 || latest.Instance < frontier {
				frontier = latest.Instance
			}
		}
		cutoff := frontier - keep + 1 // delete instances < cutoff
		if cutoff <= 0 {
			continue
		}
		for p := 0; p < n; p++ {
			snaps, err := st.List(p)
			if err != nil {
				return deleted, err
			}
			for _, s := range snaps {
				if s.CFGIndex == idx && s.Instance < cutoff {
					if err := st.Delete(p, s.CFGIndex, s.Instance); err != nil {
						return deleted, fmt.Errorf("recovery: GC: %w", err)
					}
					deleted++
				}
			}
		}
	}
	return deleted, nil
}
