package recovery

import (
	"errors"
	"testing"

	"repro/internal/storage"
	"repro/internal/vclock"
)

// save persists a snapshot with the given clock.
func save(t *testing.T, st storage.Store, proc, index, instance int, clock vclock.VC) {
	t.Helper()
	err := st.Save(storage.Snapshot{
		Proc: proc, CFGIndex: index, Instance: instance, Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStraightCutEmptyStore(t *testing.T) {
	st := storage.NewMemory()
	if _, err := StraightCut(st, 2); !errors.Is(err, ErrNoRecoveryLine) {
		t.Fatalf("err = %v, want ErrNoRecoveryLine", err)
	}
}

func TestStraightCutPicksCommonInstance(t *testing.T) {
	st := storage.NewMemory()
	// Proc 0 has instances 0..2, proc 1 only 0..1 (it was behind at the
	// failure): the cut must use instance 1 (concurrent clocks).
	save(t, st, 0, 1, 0, vclock.VC{1, 0})
	save(t, st, 0, 1, 1, vclock.VC{5, 2})
	save(t, st, 0, 1, 2, vclock.VC{9, 6})
	save(t, st, 1, 1, 0, vclock.VC{0, 1})
	save(t, st, 1, 1, 1, vclock.VC{2, 5})
	line, err := StraightCut(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	for p, s := range line.Snapshots {
		if s.Proc != p || s.CFGIndex != 1 || s.Instance != 1 {
			t.Errorf("snapshot %d = %+v, want index 1 instance 1", p, s)
		}
	}
	if line.Rollbacks != 0 {
		t.Errorf("rollbacks = %d", line.Rollbacks)
	}
}

func TestStraightCutDetectsInconsistency(t *testing.T) {
	st := storage.NewMemory()
	// Proc 0's checkpoint happened before proc 1's (Figure 3 situation).
	save(t, st, 0, 1, 0, vclock.VC{2, 0})
	save(t, st, 1, 1, 0, vclock.VC{3, 4})
	_, err := StraightCut(st, 2)
	if !errors.Is(err, ErrInconsistentCut) {
		t.Fatalf("err = %v, want ErrInconsistentCut", err)
	}
}

func TestStraightCutPrefersMostProgress(t *testing.T) {
	st := storage.NewMemory()
	// Two indexes: index 1 early, index 2 later. Both consistent; index 2
	// has larger clocks and must win.
	save(t, st, 0, 1, 0, vclock.VC{1, 0})
	save(t, st, 1, 1, 0, vclock.VC{0, 1})
	save(t, st, 0, 2, 0, vclock.VC{7, 5})
	save(t, st, 1, 2, 0, vclock.VC{5, 7})
	line, err := StraightCut(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	if line.Snapshots[0].CFGIndex != 2 {
		t.Errorf("chose index %d, want 2", line.Snapshots[0].CFGIndex)
	}
}

func TestStraightCutRequiresAllProcs(t *testing.T) {
	st := storage.NewMemory()
	save(t, st, 0, 1, 0, vclock.VC{1, 0})
	// Proc 1 never checkpointed.
	if _, err := StraightCut(st, 2); !errors.Is(err, ErrNoRecoveryLine) {
		t.Fatalf("err = %v, want ErrNoRecoveryLine", err)
	}
}

func TestLatestConsistentNoRollbackNeeded(t *testing.T) {
	st := storage.NewMemory()
	save(t, st, 0, 1, 0, vclock.VC{1, 0})
	save(t, st, 0, 1, 1, vclock.VC{4, 2})
	save(t, st, 1, 1, 0, vclock.VC{0, 1})
	save(t, st, 1, 1, 1, vclock.VC{2, 4})
	line, err := LatestConsistent(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	if line.Rollbacks != 0 {
		t.Errorf("rollbacks = %d, want 0", line.Rollbacks)
	}
	if line.Snapshots[0].Instance != 1 || line.Snapshots[1].Instance != 1 {
		t.Errorf("cut = %+v", line.Snapshots)
	}
}

func TestLatestConsistentRollsBackOrphan(t *testing.T) {
	st := storage.NewMemory()
	// Proc 1's latest checkpoint saw proc 0's post-checkpoint messages
	// (clock {5,6} dominates proc 0's {5,1}): proc 1 must roll back.
	save(t, st, 0, 1, 0, vclock.VC{2, 0})
	save(t, st, 0, 1, 1, vclock.VC{5, 1})
	save(t, st, 1, 1, 0, vclock.VC{0, 2})
	save(t, st, 1, 1, 1, vclock.VC{5, 6}) // orphan: after proc0's #1
	line, err := LatestConsistent(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	if line.Rollbacks != 1 {
		t.Errorf("rollbacks = %d, want 1", line.Rollbacks)
	}
	if line.Snapshots[1].Instance != 0 {
		t.Errorf("proc 1 restored instance %d, want 0", line.Snapshots[1].Instance)
	}
	if line.Snapshots[0].Instance != 1 {
		t.Errorf("proc 0 restored instance %d, want 1 (no rollback)", line.Snapshots[0].Instance)
	}
}

func TestLatestConsistentDominoCascade(t *testing.T) {
	st := storage.NewMemory()
	// Classic domino: each checkpoint of each process depends on the
	// other's previous interval, so no combination is consistent except
	// nothing — the cascade consumes all checkpoints of proc 1 first.
	//
	// Chain: p1#1 saw p0#0's post-checkpoint messages, and p0#1 saw
	// p1#1's; rolling back p0 exposes the p0#0→p1#1 orphan, rolling back
	// p1 finally yields the concurrent initial pair.
	save(t, st, 0, 1, 0, vclock.VC{1, 0})
	save(t, st, 1, 1, 0, vclock.VC{0, 1})
	save(t, st, 1, 1, 1, vclock.VC{2, 3})
	save(t, st, 0, 1, 1, vclock.VC{4, 4})
	line, err := LatestConsistent(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	if line.Rollbacks != 2 {
		t.Errorf("rollbacks = %d, want 2", line.Rollbacks)
	}
	if line.Snapshots[0].Instance != 0 || line.Snapshots[1].Instance != 0 {
		t.Errorf("cascade should reach the initial pair: %+v", line.Snapshots)
	}
	a, b := line.Snapshots[0], line.Snapshots[1]
	if a.Clock.Before(b.Clock) || b.Clock.Before(a.Clock) {
		t.Errorf("returned inconsistent cut: %v vs %v", a.Clock, b.Clock)
	}
}

func TestLatestConsistentTotalDomino(t *testing.T) {
	st := storage.NewMemory()
	// Every checkpoint of proc 1 is an orphan of proc 0's only checkpoint;
	// proc 1 runs out of checkpoints.
	save(t, st, 0, 1, 0, vclock.VC{1, 0})
	save(t, st, 1, 1, 0, vclock.VC{2, 1})
	line, err := LatestConsistent(st, 2)
	if err == nil {
		// {proc0#0, proc1#0}: proc0 {1,0} vs proc1 {2,1}: {1,0} < {2,1},
		// inconsistent; proc1 has nothing earlier.
		t.Fatalf("expected domino exhaustion, got %+v", line.Snapshots)
	}
	if !errors.Is(err, ErrNoRecoveryLine) {
		t.Fatalf("err = %v, want ErrNoRecoveryLine", err)
	}
}

func TestLatestConsistentEmptyProcess(t *testing.T) {
	st := storage.NewMemory()
	save(t, st, 0, 1, 0, vclock.VC{1, 0})
	if _, err := LatestConsistent(st, 2); !errors.Is(err, ErrNoRecoveryLine) {
		t.Fatalf("err = %v, want ErrNoRecoveryLine", err)
	}
}
