package recovery

import (
	"errors"
	"testing"

	"repro/internal/storage"
	"repro/internal/vclock"
)

// fill saves instances 0..count-1 of index 1 for both of 2 processes,
// with proc 0 one instance ahead when ahead is set.
func fill(t *testing.T, st storage.Store, count int, ahead bool) {
	t.Helper()
	for p := 0; p < 2; p++ {
		limit := count
		if ahead && p == 0 {
			limit = count + 1
		}
		for k := 0; k < limit; k++ {
			clk := vclock.New(2)
			clk[p] = uint64(k + 1)
			err := st.Save(storage.Snapshot{
				Proc: p, CFGIndex: 1, Instance: k, Clock: clk,
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestGCKeepsRecoveryLine(t *testing.T) {
	st := storage.NewMemory()
	fill(t, st, 5, false)
	deleted, err := GC(st, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Frontier = 4; keep instance 4 only: 4 deleted per proc.
	if deleted != 8 {
		t.Fatalf("deleted = %d, want 8", deleted)
	}
	// The recovery line must still be computable.
	line, err := StraightCut(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	if line.Snapshots[0].Instance != 4 {
		t.Errorf("recovery line instance = %d, want 4", line.Snapshots[0].Instance)
	}
}

func TestGCKeepsAheadInstances(t *testing.T) {
	st := storage.NewMemory()
	fill(t, st, 3, true) // proc 0 has instance 3, frontier is 2
	if _, err := GC(st, 2, 1); err != nil {
		t.Fatal(err)
	}
	// Proc 0's instance 3 (above frontier) must survive.
	if _, err := st.Get(0, 1, 3); err != nil {
		t.Errorf("ahead instance deleted: %v", err)
	}
	// Frontier instance 2 survives on both.
	for p := 0; p < 2; p++ {
		if _, err := st.Get(p, 1, 2); err != nil {
			t.Errorf("proc %d frontier instance deleted: %v", p, err)
		}
		if _, err := st.Get(p, 1, 1); !errors.Is(err, storage.ErrNotFound) {
			t.Errorf("proc %d stale instance kept", p)
		}
	}
}

func TestGCKeepN(t *testing.T) {
	st := storage.NewMemory()
	fill(t, st, 6, false)
	deleted, err := GC(st, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if deleted != 6 { // instances 0,1,2 on each of 2 procs
		t.Fatalf("deleted = %d, want 6", deleted)
	}
	for k := 3; k <= 5; k++ {
		if _, err := st.Get(0, 1, k); err != nil {
			t.Errorf("kept instance %d missing", k)
		}
	}
}

func TestGCValidatesKeep(t *testing.T) {
	if _, err := GC(storage.NewMemory(), 2, 0); err == nil {
		t.Fatal("keep=0 accepted")
	}
}

func TestGCEmptyStore(t *testing.T) {
	deleted, err := GC(storage.NewMemory(), 2, 1)
	if err != nil || deleted != 0 {
		t.Fatalf("deleted=%d err=%v", deleted, err)
	}
}

func TestGCIncrementalStoreRefusesInterior(t *testing.T) {
	inc := storage.NewIncremental(4)
	for p := 0; p < 2; p++ {
		for k := 0; k < 5; k++ {
			clk := vclock.New(2)
			clk[p] = uint64(k + 1)
			if err := inc.Save(storage.Snapshot{Proc: p, CFGIndex: 1, Instance: k, Clock: clk}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := GC(inc, 2, 1); err == nil {
		t.Fatal("interior GC on incremental store should error")
	}
}
