// Package liveness computes live-variable sets at checkpoint sites — the
// backward dataflow pass that turns "persist the whole environment" into
// "persist only what recovery can still observe" (ROADMAP item 2, after
// AutoCheck's data-dependency pruning, arXiv 2408.06082).
//
// The analysis is the textbook backward may-analysis over the program's
// CFG, with two deliberate deviations forced by this system's semantics:
//
//   - The exit node is live in EVERY declared-or-assigned variable, not the
//     empty set. A run's observable output is the full final environment
//     (Result.FinalVars compares every variable), so any variable that can
//     reach program exit without being redefined must survive a restore.
//
//   - recv/bcast/reduce never kill their target variable. Under the
//     guarded-boundary semantics an out-of-range peer makes the operation a
//     no-op that leaves the target unchanged, so the pre-operation value
//     can flow through; treating the receive as a definition would prune a
//     variable the no-op path still needs. They do not use the target
//     either (in-range, the old value is overwritten unread; out-of-range,
//     liveness flows through from the successors) — except reduce and
//     bcast, whose root reads the variable it contributes/broadcasts, so
//     both conservatively count the target as used.
//
// Assignment is the only killing statement. Variables pruned from a
// checkpoint therefore restore safely to their declared initial value
// (zero, per mpl.NewEnv): a pruned variable is dead at the site, meaning
// every path to exit redefines it before any use.
package liveness

import (
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/dataflow"
	"repro/internal/mpl"
)

// Result holds the per-checkpoint-site live sets of one program.
type Result struct {
	// Table is the dense variable universe the analysis ran over — shared
	// with internal/dataflow so both passes agree on what a "variable" is.
	Table *dataflow.VarTable
	// Live maps each checkpoint statement's ID to the sorted names of the
	// variables live at (i.e. just after) that checkpoint. This is the
	// snapshot manifest for the site: persisting exactly these variables
	// and restoring the rest to zero is equivalent to a full-env snapshot.
	Live map[int][]string
	// ReadLive is the same analysis solved with the exit node live in
	// NOTHING: a variable is read-live at a site only when some path
	// actually reads it before redefining it. Live − ReadLive are the
	// variables a manifest keeps solely through the everything-is-
	// observable exit rule — useful when explaining why pruning kept a
	// variable that no statement ever reads again.
	ReadLive map[int][]string
}

// ManifestFor returns the live set for a checkpoint statement id, or nil
// when the site is unknown (callers treat nil as "persist everything").
func (r *Result) ManifestFor(stmtID int) []string { return r.Live[stmtID] }

// Compute runs the analysis on a program. See ComputeCached.
func Compute(p *mpl.Program) (*Result, error) { return ComputeCached(p, nil) }

// ComputeCached is Compute with a recycled CFG build cache (the analysis
// itself holds no state across calls; the cache only serves cfg.BuildCached
// — pass nil to build fresh).
func ComputeCached(p *mpl.Program, c *cfg.BuildCache) (*Result, error) {
	g, err := cfg.BuildCached(p, c)
	if err != nil {
		return nil, fmt.Errorf("liveness: %w", err)
	}
	tbl := dataflow.NewVarTable(p)
	nvars := tbl.Len()
	nnodes := len(g.Nodes)

	// Per-node use/def sets, then the backward fixpoint over liveIn.
	use := make([]cfg.Bitset, nnodes)
	def := make([]cfg.Bitset, nnodes)
	liveIn := make([]cfg.Bitset, nnodes)
	for id := 0; id < nnodes; id++ {
		use[id] = cfg.NewBitset(nvars)
		def[id] = cfg.NewBitset(nvars)
		liveIn[id] = cfg.NewBitset(nvars)
	}
	addUses := func(set cfg.Bitset, e mpl.Expr) {
		mpl.WalkExpr(e, func(x mpl.Expr) bool {
			if id, ok := x.(*mpl.Ident); ok {
				if slot, ok := tbl.Index[id.Name]; ok {
					set.Set(slot)
				}
			}
			return true
		})
	}
	for _, n := range g.Nodes {
		switch n.Kind {
		case cfg.KindCompute:
			switch st := n.Stmt.(type) {
			case *mpl.Assign:
				addUses(use[n.ID], st.X)
				def[n.ID].Set(tbl.Index[st.Name])
			case *mpl.Work:
				addUses(use[n.ID], st.Amount)
			}
		case cfg.KindBranch:
			switch st := n.Stmt.(type) {
			case *mpl.While:
				addUses(use[n.ID], st.Cond)
			case *mpl.If:
				addUses(use[n.ID], st.Cond)
			}
		case cfg.KindSend:
			st := n.Stmt.(*mpl.Send)
			addUses(use[n.ID], st.Dest)
			use[n.ID].Set(tbl.Index[st.Var])
		case cfg.KindRecv:
			// Guarded-boundary no-op receives keep the old value: no kill,
			// no use of the target (see the package comment).
			st := n.Stmt.(*mpl.Recv)
			addUses(use[n.ID], st.Src)
		case cfg.KindBcast:
			st := n.Stmt.(*mpl.Bcast)
			addUses(use[n.ID], st.Root)
			use[n.ID].Set(tbl.Index[st.Var])
		case cfg.KindReduce:
			st := n.Stmt.(*mpl.Reduce)
			addUses(use[n.ID], st.Root)
			use[n.ID].Set(tbl.Index[st.Var])
		case cfg.KindEntry, cfg.KindExit, cfg.KindChkpt:
			// No uses, no defs.
		}
	}

	// Backward fixpoint: liveOut(n) = ∪ liveIn(succ); liveIn(n) =
	// use(n) ∪ (liveOut(n) − def(n)). Node ids are assigned in program
	// order, so sweeping ids high-to-low converges in a couple of rounds.
	// A checkpoint node has no use/def, so its live-out equals its live-in;
	// that set — the variables observable after the checkpoint resumes — is
	// the site's manifest.
	solve := func(exitAll bool) map[int][]string {
		for id := 0; id < nnodes; id++ {
			liveIn[id].Zero()
		}
		if exitAll {
			// Exit is live in everything: the final environment is the
			// program's observable output.
			for slot := 0; slot < nvars; slot++ {
				liveIn[g.Exit].Set(slot)
			}
		}
		out := cfg.NewBitset(nvars)
		tmp := cfg.NewBitset(nvars)
		for changed := true; changed; {
			changed = false
			for id := nnodes - 1; id >= 0; id-- {
				if id == g.Exit {
					continue
				}
				out.Zero()
				for _, e := range g.Succs(id) {
					out.UnionWith(liveIn[e.To])
				}
				tmp.CopyFrom(out)
				tmp.AndNotWith(def[id])
				tmp.UnionWith(use[id])
				if !tmp.Equal(liveIn[id]) {
					liveIn[id].CopyFrom(tmp)
					changed = true
				}
			}
		}
		sets := make(map[int][]string)
		for _, n := range g.Nodes {
			if n.Kind != cfg.KindChkpt {
				continue
			}
			var names []string
			for slot := 0; slot < nvars; slot++ {
				if liveIn[n.ID].Has(slot) {
					names = append(names, tbl.Names[slot])
				}
			}
			sort.Strings(names)
			sets[n.Stmt.ID()] = names
		}
		return sets
	}

	return &Result{Table: tbl, Live: solve(true), ReadLive: solve(false)}, nil
}

// Prune returns the subset of vars named by manifest (nil manifest returns
// a copy of vars — "persist everything"). The result is always a fresh map.
func Prune(vars map[string]int, manifest []string) map[string]int {
	if manifest == nil {
		out := make(map[string]int, len(vars))
		for k, v := range vars {
			out[k] = v
		}
		return out
	}
	out := make(map[string]int, len(manifest))
	for _, name := range manifest {
		if v, ok := vars[name]; ok {
			out[name] = v
		}
	}
	return out
}
