package liveness

import (
	"reflect"
	"testing"

	"repro/internal/mpl"
)

// chkptIDs returns the checkpoint statement ids in pre-order body order, so
// tests can key expected live sets by checkpoint position.
func chkptIDs(p *mpl.Program) []int {
	var ids []int
	mpl.Walk(p.Body, func(s mpl.Stmt) bool {
		if _, ok := s.(*mpl.Chkpt); ok {
			ids = append(ids, s.ID())
		}
		return true
	})
	return ids
}

func TestComputeLiveSets(t *testing.T) {
	n3 := mpl.Lt(mpl.V("iter"), mpl.Int(3))
	cases := []struct {
		name string
		prog *mpl.Program
		// want[i] is the expected live set of the i-th checkpoint in
		// pre-order body order; wantRead[i] the expected read-live set
		// (exit observes nothing).
		want     [][]string
		wantRead [][]string
	}{
		{
			// A loop that redefines a before using it: a is dead at the
			// checkpoint (every path from the checkpoint kills it first),
			// while the accumulator and the loop counter stay live.
			name: "loop redefine-then-use",
			prog: mpl.NewBuilder("redefine").
				Vars("a", "b", "iter").
				Assign("iter", mpl.Int(0)).
				While(n3, func(b *mpl.Builder) {
					b.Chkpt()
					b.Assign("a", mpl.Mul(mpl.V("iter"), mpl.Int(2)))
					b.Assign("b", mpl.Add(mpl.V("b"), mpl.V("a")))
					b.Assign("iter", mpl.Add(mpl.V("iter"), mpl.Int(1)))
				}).
				MustProgram(),
			want:     [][]string{{"b", "iter"}},
			wantRead: [][]string{{"b", "iter"}},
		},
		{
			// v is defined only by recv. Under guarded-boundary semantics an
			// out-of-range receive is a no-op that keeps the old value, so
			// recv must not kill: v stays live at the checkpoint.
			name: "recv-only-defined variable stays live",
			prog: mpl.NewBuilder("recvonly").
				Vars("v", "iter").
				Assign("iter", mpl.Int(0)).
				While(n3, func(b *mpl.Builder) {
					b.Chkpt()
					b.Recv(mpl.Sub(mpl.Rank(), mpl.Int(1)), "v")
					b.Send(mpl.Add(mpl.Rank(), mpl.Int(1)), "v")
					b.Assign("iter", mpl.Add(mpl.V("iter"), mpl.Int(1)))
				}).
				MustProgram(),
			want:     [][]string{{"iter", "v"}},
			wantRead: [][]string{{"iter", "v"}},
		},
		{
			// ID-dependent branches: each arm checkpoints, then kills a
			// different variable before its next use, so the two sites have
			// different live sets even though they share the loop.
			name: "ID-dependent branches differ per arm",
			prog: mpl.NewBuilder("idbranch").
				Vars("x", "y", "iter").
				Assign("iter", mpl.Int(0)).
				While(n3, func(b *mpl.Builder) {
					b.IfElse(mpl.Eq(mpl.Mod(mpl.Rank(), mpl.Int(2)), mpl.Int(0)),
						func(b *mpl.Builder) {
							b.Chkpt()
							b.Assign("y", mpl.Add(mpl.V("x"), mpl.Int(1)))
							b.Send(mpl.Add(mpl.Rank(), mpl.Int(1)), "y")
						},
						func(b *mpl.Builder) {
							b.Chkpt()
							b.Assign("x", mpl.Add(mpl.V("y"), mpl.Int(2)))
							b.Send(mpl.Sub(mpl.Rank(), mpl.Int(1)), "x")
						})
					b.Assign("iter", mpl.Add(mpl.V("iter"), mpl.Int(1)))
				}).
				MustProgram(),
			want:     [][]string{{"iter", "x"}, {"iter", "y"}},
			wantRead: [][]string{{"iter", "x"}, {"iter", "y"}},
		},
		{
			// A temporary folded into the accumulator before the checkpoint
			// and redefined on both the back edge and the exit path is dead
			// at the checkpoint — the canonical payload the pruning drops.
			name: "dead-after-checkpoint temporary",
			prog: mpl.NewBuilder("deadtmp").
				Vars("tmp", "acc", "iter").
				Assign("iter", mpl.Int(0)).
				While(n3, func(b *mpl.Builder) {
					b.Assign("tmp", mpl.Mul(mpl.V("acc"), mpl.Int(2)))
					b.Assign("acc", mpl.Add(mpl.V("acc"), mpl.V("tmp")))
					b.Chkpt()
					b.Assign("iter", mpl.Add(mpl.V("iter"), mpl.Int(1)))
				}).
				Assign("tmp", mpl.Int(0)).
				MustProgram(),
			want:     [][]string{{"acc", "iter"}},
			wantRead: [][]string{{"acc", "iter"}},
		},
		{
			// Same shape WITHOUT the trailing kill: the final environment is
			// the program's observable output, so the exit node is live in
			// everything and tmp must stay in the manifest.
			name: "exit keeps every variable live",
			prog: mpl.NewBuilder("exitlive").
				Vars("tmp", "acc", "iter").
				Assign("iter", mpl.Int(0)).
				While(n3, func(b *mpl.Builder) {
					b.Assign("tmp", mpl.Mul(mpl.V("acc"), mpl.Int(2)))
					b.Assign("acc", mpl.Add(mpl.V("acc"), mpl.V("tmp")))
					b.Chkpt()
					b.Assign("iter", mpl.Add(mpl.V("iter"), mpl.Int(1)))
				}).
				MustProgram(),
			// tmp is in the manifest ONLY because exit observes it: no
			// statement ever reads it again, so it drops out of ReadLive.
			want:     [][]string{{"acc", "iter", "tmp"}},
			wantRead: [][]string{{"acc", "iter"}},
		},
		{
			// Use-before-def across the while back edge: at a checkpoint at
			// the BOTTOM of the loop, s is live only because the next
			// iteration reads it before the bottom-of-body redefinition —
			// liveness must propagate around the back edge. d is killed at
			// the loop top before any use, and both are killed on the exit
			// path, so only the back edge keeps s alive.
			name: "use-before-def across while back edge",
			prog: mpl.NewBuilder("backedge").
				Vars("s", "d", "iter").
				Assign("iter", mpl.Int(0)).
				While(n3, func(b *mpl.Builder) {
					b.Assign("d", mpl.Add(mpl.V("s"), mpl.Int(1)))
					b.Assign("s", mpl.Mul(mpl.V("d"), mpl.Int(2)))
					b.Assign("iter", mpl.Add(mpl.V("iter"), mpl.Int(1)))
					b.Chkpt()
				}).
				Assign("s", mpl.Int(0)).
				Assign("d", mpl.Int(0)).
				MustProgram(),
			want:     [][]string{{"iter", "s"}},
			wantRead: [][]string{{"iter", "s"}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Compute(tc.prog)
			if err != nil {
				t.Fatalf("Compute: %v", err)
			}
			ids := chkptIDs(tc.prog)
			if len(ids) != len(tc.want) {
				t.Fatalf("program has %d checkpoint sites, test expects %d", len(ids), len(tc.want))
			}
			if len(res.Live) != len(ids) {
				t.Errorf("Live covers %d sites, want %d", len(res.Live), len(ids))
			}
			for i, id := range ids {
				if got := res.ManifestFor(id); !reflect.DeepEqual(got, tc.want[i]) {
					t.Errorf("site %d (stmt #%d): live set %v, want %v", i, id, got, tc.want[i])
				}
				if got := res.ReadLive[id]; !reflect.DeepEqual(got, tc.wantRead[i]) {
					t.Errorf("site %d (stmt #%d): read-live set %v, want %v", i, id, got, tc.wantRead[i])
				}
			}
		})
	}
}

func TestPrune(t *testing.T) {
	vars := map[string]int{"a": 1, "b": 2, "c": 3}
	got := Prune(vars, []string{"a", "c"})
	if want := map[string]int{"a": 1, "c": 3}; !reflect.DeepEqual(got, want) {
		t.Errorf("Prune = %v, want %v", got, want)
	}
	// nil manifest means "persist everything", as a fresh copy.
	full := Prune(vars, nil)
	if !reflect.DeepEqual(full, vars) {
		t.Errorf("Prune(nil) = %v, want %v", full, vars)
	}
	full["a"] = 99
	if vars["a"] != 1 {
		t.Error("Prune(nil) must copy, not alias")
	}
	// A manifest name missing from vars is skipped, not zero-filled.
	if got := Prune(map[string]int{"a": 1}, []string{"a", "z"}); len(got) != 1 {
		t.Errorf("Prune with unknown name = %v, want only a", got)
	}
}
