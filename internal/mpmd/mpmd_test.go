package mpmd

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/mpl"
	"repro/internal/sim"
	"repro/internal/trace"
)

// masterRole and workerRole form a producer/consumer MPMD pair: rank 0
// hands a task to each worker and collects results; the checkpoint
// placements are deliberately skewed (master before sending, workers after
// replying) so the merged program needs Phase III.
func masterRole(t *testing.T) Role {
	t.Helper()
	p, err := mpl.Parse(`
program master
var task, result, acc, w
proc {
    task = 7
    chkpt
    w = 1
    while w < nproc {
        send(w, task)
        w = w + 1
    }
    w = 1
    while w < nproc {
        recv(w, result)
        acc = acc + result
        w = w + 1
    }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	return Role{Name: "master", Guard: mpl.Eq(mpl.Rank(), mpl.Int(0)), Program: p}
}

func workerRole(t *testing.T) Role {
	t.Helper()
	p, err := mpl.Parse(`
program worker
var task, result
proc {
    recv(0, task)
    result = task * rank
    send(0, result)
    chkpt
}
`)
	if err != nil {
		t.Fatal(err)
	}
	return Role{Name: "worker", Guard: mpl.Neq(mpl.Rank(), mpl.Int(0)), Program: p}
}

func TestMergeProducesValidSPMD(t *testing.T) {
	merged, err := Merge("mw", []Role{masterRole(t), workerRole(t)}, attr.DefaultSolver)
	if err != nil {
		t.Fatal(err)
	}
	// Top level is a guard chain.
	if len(merged.Body) != 1 {
		t.Fatalf("top level = %d statements, want 1 if-chain", len(merged.Body))
	}
	outer, ok := merged.Body[0].(*mpl.If)
	if !ok {
		t.Fatalf("top = %T", merged.Body[0])
	}
	if mpl.ExprString(outer.Cond) != "rank == 0" {
		t.Errorf("outer guard = %q", mpl.ExprString(outer.Cond))
	}
	// Shared variables merged once.
	count := 0
	for _, v := range merged.Vars {
		if v == "task" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("task declared %d times", count)
	}
	// Unique statement ids.
	seen := map[int]bool{}
	mpl.Walk(merged.Body, func(s mpl.Stmt) bool {
		if seen[s.ID()] {
			t.Errorf("duplicate id %d", s.ID())
		}
		seen[s.ID()] = true
		return true
	})
	// Reparses after formatting.
	if _, err := mpl.Parse(mpl.Format(merged)); err != nil {
		t.Fatalf("merged program does not reparse: %v\n%s", err, mpl.Format(merged))
	}
}

func TestMergedProgramTransformsAndRuns(t *testing.T) {
	merged, err := Merge("mw", []Role{masterRole(t), workerRole(t)}, attr.DefaultSolver)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Transform(merged, core.DefaultConfig)
	if err != nil {
		t.Fatalf("transform: %v\n%s", err, mpl.Format(merged))
	}
	res, err := sim.Run(sim.Config{Program: rep.Program, Nproc: 4, Timeout: 20 * time.Second})
	if err != nil {
		t.Fatalf("run: %v\n%s", err, mpl.Format(rep.Program))
	}
	// acc on the master = 7*(1+2+3) = 42.
	if got := res.FinalVars[0]["acc"]; got != 42 {
		t.Errorf("master acc = %d, want 42", got)
	}
	// Every straight cut is a recovery line.
	for _, idx := range res.Trace.CheckpointIndexes() {
		cut, err := res.Trace.StraightCut(idx)
		if err != nil {
			continue
		}
		if !trace.IsRecoveryLine(cut) {
			t.Errorf("R_%d inconsistent", idx)
		}
	}
	// And it survives a worker crash.
	clean := res.FinalVars
	crashed, err := sim.Run(sim.Config{
		Program:  rep.Program,
		Nproc:    4,
		Failures: []sim.Failure{{Proc: 2, AfterEvents: 3}},
		Timeout:  20 * time.Second,
	})
	if err != nil {
		t.Fatalf("crash run: %v", err)
	}
	if !reflect.DeepEqual(clean, crashed.FinalVars) {
		t.Error("crash run diverged")
	}
}

func TestMergeRejectsOverlap(t *testing.T) {
	a, b := masterRole(t), workerRole(t)
	b.Guard = mpl.Lt(mpl.Rank(), mpl.Int(2)) // overlaps rank 0
	_, err := Merge("bad", []Role{a, b}, attr.DefaultSolver)
	if !errors.Is(err, ErrOverlap) {
		t.Fatalf("err = %v, want ErrOverlap", err)
	}
}

func TestMergeRejectsUncovered(t *testing.T) {
	a := masterRole(t)
	b := workerRole(t)
	b.Guard = mpl.Eq(mpl.Rank(), mpl.Int(1)) // ranks >= 2 uncovered
	_, err := Merge("bad", []Role{a, b}, attr.DefaultSolver)
	if !errors.Is(err, ErrUncovered) {
		t.Fatalf("err = %v, want ErrUncovered", err)
	}
}

func TestMergeRejectsConflictingConsts(t *testing.T) {
	a, b := masterRole(t), workerRole(t)
	a.Program.Consts = append(a.Program.Consts, mpl.Const{Name: "K", Value: 1})
	b.Program.Consts = append(b.Program.Consts, mpl.Const{Name: "K", Value: 2})
	_, err := Merge("bad", []Role{a, b}, attr.DefaultSolver)
	if err == nil || !strings.Contains(err.Error(), "conflicting values") {
		t.Fatalf("err = %v", err)
	}
}

func TestMergeRejectsUnclosedGuard(t *testing.T) {
	a := masterRole(t)
	a.Guard = mpl.Eq(mpl.V("task"), mpl.Int(0)) // not closed over rank/nproc
	_, err := Merge("bad", []Role{a, workerRole(t)}, attr.DefaultSolver)
	if err == nil {
		t.Fatal("unclosed guard accepted")
	}
}

func TestMergeRejectsEmpty(t *testing.T) {
	if _, err := Merge("empty", nil, attr.DefaultSolver); err == nil {
		t.Fatal("empty role set accepted")
	}
}

func TestMergeThreeRoles(t *testing.T) {
	mk := func(t *testing.T, src string) *mpl.Program {
		t.Helper()
		p, err := mpl.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	head := Role{
		Name:  "head",
		Guard: mpl.Eq(mpl.Rank(), mpl.Int(0)),
		Program: mk(t, `
program head
var v
proc {
    chkpt
    v = 100
    send(1, v)
}`),
	}
	middle := Role{
		Name:  "middle",
		Guard: mpl.And(mpl.Gt(mpl.Rank(), mpl.Int(0)), mpl.Lt(mpl.Rank(), mpl.Sub(mpl.Nproc(), mpl.Int(1)))),
		Program: mk(t, `
program middle
var v
proc {
    recv(rank - 1, v)
    chkpt
    v = v + rank
    send(rank + 1, v)
}`),
	}
	tailR := Role{
		Name:  "tail",
		Guard: mpl.Eq(mpl.Rank(), mpl.Sub(mpl.Nproc(), mpl.Int(1))),
		Program: mk(t, `
program tail
var v
proc {
    recv(rank - 1, v)
    chkpt
}`),
	}
	merged, err := Merge("pipeline3", []Role{head, middle, tailR}, attr.DefaultSolver)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Transform(merged, core.DefaultConfig)
	if err != nil {
		t.Fatalf("transform: %v", err)
	}
	res, err := sim.Run(sim.Config{Program: rep.Program, Nproc: 4, Timeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// v at the tail = 100 + 1 + 2 = 103.
	if got := res.FinalVars[3]["v"]; got != 103 {
		t.Errorf("tail v = %d, want 103", got)
	}
	for _, idx := range res.Trace.CheckpointIndexes() {
		cut, err := res.Trace.StraightCut(idx)
		if err != nil {
			continue
		}
		if !trace.IsRecoveryLine(cut) {
			t.Errorf("R_%d inconsistent", idx)
		}
	}
}
