// Package mpmd extends the analysis to Multiple Program Multiple Data
// applications. The paper's offline phases assume SPMD ("the whole program
// is represented in one source file") but note that MPMD works "if all the
// files of the source code of a message-passing program are presented for
// offline analysis" (§3). This package implements that: it merges a set of
// role programs — each guarding a disjoint set of ranks — into one SPMD
// program whose top-level structure is an ID-dependent if/else chain. The
// merged program flows through phases I–III unchanged: the role guards are
// exactly the ID-dependent branches Algorithm 3.1 keys on.
package mpmd

import (
	"errors"
	"fmt"

	"repro/internal/attr"
	"repro/internal/mpl"
)

// Role is one MPMD component: a program executed by the ranks satisfying
// Guard. Guards must be closed expressions over (rank, nproc).
type Role struct {
	// Name labels the role in diagnostics.
	Name string
	// Guard selects the ranks that run this role (e.g. rank == 0, or
	// rank >= nproc/2).
	Guard mpl.Expr
	// Program is the role's code. Its Consts/Vars are merged into the
	// combined program; name collisions across roles must agree on
	// constant values and are shared for variables.
	Program *mpl.Program
}

// ErrOverlap reports two roles claiming the same rank.
var ErrOverlap = errors.New("mpmd: role guards overlap")

// ErrUncovered reports ranks no role claims.
var ErrUncovered = errors.New("mpmd: some ranks match no role")

// Merge combines MPMD roles into a single SPMD program named name. It
// verifies with the attribute solver that the guards are pairwise disjoint
// and jointly cover every rank for every process count within the solver's
// bounds.
func Merge(name string, roles []Role, solver attr.Solver) (*mpl.Program, error) {
	if len(roles) == 0 {
		return nil, errors.New("mpmd: no roles")
	}
	for _, r := range roles {
		if r.Program == nil || r.Guard == nil {
			return nil, fmt.Errorf("mpmd: role %q missing guard or program", r.Name)
		}
		if err := attr.Validate(r.Guard); err != nil {
			return nil, fmt.Errorf("mpmd: role %q: %w", r.Name, err)
		}
	}
	if err := checkPartition(roles, solver); err != nil {
		return nil, err
	}

	merged := &mpl.Program{Name: name}
	seenConst := make(map[string]int)
	seenVar := make(map[string]bool)
	for _, r := range roles {
		for _, c := range r.Program.Consts {
			if v, ok := seenConst[c.Name]; ok {
				if v != c.Value {
					return nil, fmt.Errorf("mpmd: constant %q has conflicting values %d and %d",
						c.Name, v, c.Value)
				}
				continue
			}
			seenConst[c.Name] = c.Value
			merged.Consts = append(merged.Consts, c)
		}
		for _, v := range r.Program.Vars {
			if !seenVar[v] {
				seenVar[v] = true
				merged.Vars = append(merged.Vars, v)
			}
		}
	}

	// Build the guard chain: if g1 { body1 } else if g2 { body2 } ... The
	// final role still gets an explicit guard so the analysis sees its
	// attribute (coverage was verified above, so the final else is dead).
	nextID := 0
	assignIDs := func(body []mpl.Stmt) {
		mpl.Walk(body, func(s mpl.Stmt) bool {
			setStmtID(s, nextID)
			nextID++
			return true
		})
	}
	var chain []mpl.Stmt
	tail := &chain
	for _, r := range roles {
		body := mpl.Clone(r.Program).Body
		assignIDs(body)
		guard := mpl.CloneExpr(r.Guard)
		ifStmt := &mpl.If{
			StmtBase: mpl.StmtBase{StmtID: nextID},
			Cond:     guard,
			Then:     body,
		}
		nextID++
		*tail = append(*tail, ifStmt)
		tail = &ifStmt.Else
	}
	merged.Body = chain
	if err := mpl.Check(merged); err != nil {
		return nil, fmt.Errorf("mpmd: merged program invalid: %w", err)
	}
	return merged, nil
}

// setStmtID rewrites a statement's id (the merged program needs globally
// unique ids across roles).
func setStmtID(s mpl.Stmt, id int) {
	switch st := s.(type) {
	case *mpl.Assign:
		st.StmtID = id
	case *mpl.Work:
		st.StmtID = id
	case *mpl.Send:
		st.StmtID = id
	case *mpl.Recv:
		st.StmtID = id
	case *mpl.Bcast:
		st.StmtID = id
	case *mpl.Chkpt:
		st.StmtID = id
	case *mpl.While:
		st.StmtID = id
	case *mpl.If:
		st.StmtID = id
	}
}

// checkPartition verifies disjointness and coverage of the role guards
// over the solver's process-count bounds.
func checkPartition(roles []Role, solver attr.Solver) error {
	lo, hi := solverBounds(solver)
	for n := lo; n <= hi; n++ {
		for rank := 0; rank < n; rank++ {
			matches := 0
			var names []string
			for _, r := range roles {
				pred := attr.Predicate{{Cond: r.Guard, Want: true}}
				if pred.HoldsAt(rank, n) {
					matches++
					names = append(names, r.Name)
				}
			}
			switch {
			case matches == 0:
				return fmt.Errorf("%w: rank %d of %d", ErrUncovered, rank, n)
			case matches > 1:
				return fmt.Errorf("%w: rank %d of %d matches %v", ErrOverlap, rank, n, names)
			}
		}
	}
	return nil
}

func solverBounds(s attr.Solver) (int, int) {
	lo, hi := s.MinProcs, s.MaxProcs
	if lo < 1 {
		lo = 2
	}
	if hi < lo {
		hi = 17
	}
	return lo, hi
}
