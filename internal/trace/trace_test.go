package trace

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/vclock"
)

// builder drives a Trace with correctly-maintained vector clocks, acting as
// a miniature deterministic runtime for tests.
type builder struct {
	t      *Trace
	clocks []vclock.VC
	// pending holds the clock attached to each in-flight message.
	pending map[MessageID]vclock.VC
	seq     map[[2]int]int
	chkpts  map[[2]int]int // (proc, cfgIndex) -> next instance
}

func newBuilder(n int) *builder {
	b := &builder{
		t:       NewTrace(n),
		clocks:  make([]vclock.VC, n),
		pending: make(map[MessageID]vclock.VC),
		seq:     make(map[[2]int]int),
		chkpts:  make(map[[2]int]int),
	}
	for i := range b.clocks {
		b.clocks[i] = vclock.New(n)
	}
	return b
}

func (b *builder) compute(p int) {
	b.clocks[p].Tick(p)
	b.t.Append(Event{Proc: p, Kind: KindCompute, Clock: b.clocks[p]})
}

func (b *builder) send(from, to int) MessageID {
	key := [2]int{from, to}
	id := MessageID{From: from, To: to, Seq: b.seq[key]}
	b.seq[key]++
	b.clocks[from].Tick(from)
	b.pending[id] = b.clocks[from].Clone()
	b.t.Append(Event{Proc: from, Kind: KindSend, Clock: b.clocks[from], Msg: id, Peer: to})
	return id
}

func (b *builder) recv(id MessageID) {
	p := id.To
	b.clocks[p].Tick(p)
	b.clocks[p].Merge(b.pending[id])
	b.t.Append(Event{Proc: p, Kind: KindRecv, Clock: b.clocks[p], Msg: id, Peer: id.From})
}

func (b *builder) checkpoint(p, cfgIndex int) Checkpoint {
	key := [2]int{p, cfgIndex}
	inst := b.chkpts[key]
	b.chkpts[key]++
	b.clocks[p].Tick(p)
	e := b.t.Append(Event{
		Proc: p, Kind: KindCheckpoint, Clock: b.clocks[p],
		Chkpt: Checkpoint{CFGIndex: cfgIndex, Instance: inst},
	})
	return e.Chkpt
}

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{KindCompute, "compute"},
		{KindSend, "send"},
		{KindRecv, "recv"},
		{KindCheckpoint, "checkpoint"},
		{Kind(0), "kind(0)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.k, got, tt.want)
		}
	}
}

func TestAppendAssignsSeq(t *testing.T) {
	b := newBuilder(2)
	b.compute(0)
	b.compute(0)
	b.compute(1)
	h0 := b.t.History(0)
	if len(h0) != 2 || h0[0].Seq != 0 || h0[1].Seq != 1 {
		t.Fatalf("history 0 seqs wrong: %+v", h0)
	}
	if b.t.Len() != 3 {
		t.Fatalf("Len = %d, want 3", b.t.Len())
	}
}

func TestStraightCutPicksLatestInstance(t *testing.T) {
	b := newBuilder(2)
	// Both processes take checkpoint index 1 twice (loop semantics).
	b.checkpoint(0, 1)
	b.checkpoint(1, 1)
	b.checkpoint(0, 1)
	b.checkpoint(1, 1)
	cut, err := b.t.StraightCut(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, cp := range cut {
		if cp.Instance != 1 {
			t.Errorf("process %d: got instance %d, want latest (1)", cp.Proc, cp.Instance)
		}
	}
}

func TestStraightCutMissing(t *testing.T) {
	b := newBuilder(2)
	b.checkpoint(0, 1)
	if _, err := b.t.StraightCut(1); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
}

func TestCheckpointIndexes(t *testing.T) {
	b := newBuilder(1)
	b.checkpoint(0, 3)
	b.checkpoint(0, 1)
	b.checkpoint(0, 3)
	got := b.t.CheckpointIndexes()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("indexes = %v, want [1 3]", got)
	}
}

func TestCutValidate(t *testing.T) {
	good := Cut{{Proc: 0}, {Proc: 1}}
	if err := good.Validate(2); err != nil {
		t.Errorf("valid cut rejected: %v", err)
	}
	if err := (Cut{{Proc: 0}}).Validate(2); err == nil {
		t.Error("short cut accepted")
	}
	if err := (Cut{{Proc: 0}, {Proc: 0}}).Validate(2); err == nil {
		t.Error("duplicated process accepted")
	}
	if err := (Cut{{Proc: 0}, {Proc: 5}}).Validate(2); err == nil {
		t.Error("out-of-range process accepted")
	}
}

// consistentScenario: both checkpoint before exchanging messages — the
// straight cut is a recovery line (paper Figure 1 behaviour).
func consistentScenario() (*builder, Cut) {
	b := newBuilder(2)
	c0 := b.checkpoint(0, 1)
	c1 := b.checkpoint(1, 1)
	m := b.send(0, 1)
	b.recv(m)
	m2 := b.send(1, 0)
	b.recv(m2)
	return b, Cut{c0, c1}
}

// inconsistentScenario: P0 checkpoints, sends to P1, and P1 checkpoints
// after receiving — C_{0,1} happened before C_{1,1} (paper Figure 3
// behaviour).
func inconsistentScenario() (*builder, Cut) {
	b := newBuilder(2)
	c0 := b.checkpoint(0, 1)
	m := b.send(0, 1)
	b.recv(m)
	c1 := b.checkpoint(1, 1)
	return b, Cut{c0, c1}
}

func TestIsRecoveryLine(t *testing.T) {
	_, goodCut := consistentScenario()
	if !IsRecoveryLine(goodCut) {
		t.Error("consistent cut rejected")
	}
	_, badCut := inconsistentScenario()
	if IsRecoveryLine(badCut) {
		t.Error("inconsistent cut accepted")
	}
	if a, bb, ok := FirstViolation(badCut); !ok || a.Proc != 0 || bb.Proc != 1 {
		t.Errorf("FirstViolation = %v,%v,%v; want P0 before P1", a, bb, ok)
	}
	if _, _, ok := FirstViolation(goodCut); ok {
		t.Error("FirstViolation reported on a recovery line")
	}
}

func TestHBStructuralAgreesOnScenarios(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() (*builder, Cut)
		want bool
	}{
		{"consistent", consistentScenario, true},
		{"inconsistent", inconsistentScenario, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b, cut := tc.mk()
			h, err := NewHB(b.t)
			if err != nil {
				t.Fatal(err)
			}
			if got := h.CutConsistentStructural(cut); got != tc.want {
				t.Errorf("structural = %v, want %v", got, tc.want)
			}
			if got := h.CutConsistentByMessages(cut); got != tc.want {
				t.Errorf("by-messages = %v, want %v", got, tc.want)
			}
			if got := IsRecoveryLine(cut); got != tc.want {
				t.Errorf("vector clocks = %v, want %v", got, tc.want)
			}
			if err := h.CheckClockConsistency(); err != nil {
				t.Errorf("clock consistency: %v", err)
			}
		})
	}
}

func TestHBBeforeSameProcess(t *testing.T) {
	b := newBuilder(1)
	b.compute(0)
	b.compute(0)
	h, err := NewHB(b.t)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Before(0, 0, 0, 1) {
		t.Error("earlier local event should be before later")
	}
	if h.Before(0, 1, 0, 0) {
		t.Error("later local event cannot be before earlier")
	}
}

func TestHBTransitiveAcrossThreeProcesses(t *testing.T) {
	b := newBuilder(3)
	m01 := b.send(0, 1)
	b.recv(m01)
	m12 := b.send(1, 2)
	b.recv(m12)
	h, err := NewHB(b.t)
	if err != nil {
		t.Fatal(err)
	}
	// send on P0 (event 0,0) should be before recv on P2.
	recvSeq := len(b.t.History(2)) - 1
	if !h.Before(0, 0, 2, recvSeq) {
		t.Error("transitive hb across chain not detected")
	}
	if h.Before(2, recvSeq, 0, 0) {
		t.Error("reverse hb should not hold")
	}
}

func TestValidateDetectsUnsentMessage(t *testing.T) {
	tr := NewTrace(2)
	tr.Append(Event{Proc: 1, Kind: KindRecv, Clock: vclock.New(2), Msg: MessageID{From: 0, To: 1, Seq: 0}})
	if err := Validate(tr); err == nil {
		t.Error("unsent message not detected")
	}
}

func TestValidateDetectsDuplicateRecv(t *testing.T) {
	tr := NewTrace(2)
	id := MessageID{From: 0, To: 1, Seq: 0}
	tr.Append(Event{Proc: 0, Kind: KindSend, Clock: vclock.New(2), Msg: id})
	tr.Append(Event{Proc: 1, Kind: KindRecv, Clock: vclock.New(2), Msg: id})
	tr.Append(Event{Proc: 1, Kind: KindRecv, Clock: vclock.New(2), Msg: id})
	if err := Validate(tr); err == nil {
		t.Error("duplicate receive not detected")
	}
}

func TestValidateDetectsFIFOViolation(t *testing.T) {
	tr := NewTrace(2)
	id0 := MessageID{From: 0, To: 1, Seq: 0}
	id1 := MessageID{From: 0, To: 1, Seq: 1}
	tr.Append(Event{Proc: 0, Kind: KindSend, Clock: vclock.New(2), Msg: id0})
	tr.Append(Event{Proc: 0, Kind: KindSend, Clock: vclock.New(2), Msg: id1})
	tr.Append(Event{Proc: 1, Kind: KindRecv, Clock: vclock.New(2), Msg: id1})
	tr.Append(Event{Proc: 1, Kind: KindRecv, Clock: vclock.New(2), Msg: id0})
	if err := Validate(tr); err == nil {
		t.Error("FIFO violation not detected")
	}
}

func TestValidateAcceptsGoodTrace(t *testing.T) {
	b, _ := consistentScenario()
	if err := Validate(b.t); err != nil {
		t.Errorf("good trace rejected: %v", err)
	}
}

// TestRandomTraceAgreement generates random executions and asserts that the
// three consistency deciders always agree, and that clocks match structural
// happened-before — the package's core cross-check property.
func TestRandomTraceAgreement(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(3)
		b := newBuilder(n)
		var inflight []MessageID
		for step := 0; step < 40; step++ {
			p := r.Intn(n)
			switch r.Intn(4) {
			case 0:
				b.compute(p)
			case 1:
				q := r.Intn(n)
				if q == p {
					q = (q + 1) % n
				}
				inflight = append(inflight, b.send(p, q))
			case 2:
				// Deliver the oldest in-flight message per FIFO.
				if len(inflight) > 0 {
					b.recv(inflight[0])
					inflight = inflight[1:]
				}
			case 3:
				b.checkpoint(p, 1)
			}
		}
		// Ensure every process has at least one checkpoint.
		for p := 0; p < n; p++ {
			b.checkpoint(p, 1)
		}
		for len(inflight) > 0 {
			b.recv(inflight[0])
			inflight = inflight[1:]
		}
		if err := Validate(b.t); err != nil {
			t.Fatalf("seed %d: invalid trace: %v", seed, err)
		}
		h, err := NewHB(b.t)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := h.CheckClockConsistency(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cut, err := b.t.StraightCut(1)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		byClocks := IsRecoveryLine(cut)
		byStruct := h.CutConsistentStructural(cut)
		byMsgs := h.CutConsistentByMessages(cut)
		if byClocks != byStruct || byStruct != byMsgs {
			t.Fatalf("seed %d: deciders disagree: clocks=%v structural=%v messages=%v",
				seed, byClocks, byStruct, byMsgs)
		}
	}
}

func BenchmarkStraightCut(b *testing.B) {
	bb := newBuilder(8)
	for i := 0; i < 200; i++ {
		bb.checkpoint(i%8, 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bb.t.StraightCut(1); err != nil {
			b.Fatal(err)
		}
	}
}
