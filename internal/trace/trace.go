// Package trace records distributed executions as collections of local
// histories (the paper's §2 system model) and decides the properties the
// checkpointing theory is about: the happened-before relation between
// events, consistency of cuts of checkpoints (Definition 2.1), and
// straight cuts of the i-th checkpoints (Definitions 2.2/2.3).
//
// The package offers two independent implementations of happened-before:
// vector clocks stamped during execution, and a transitive-closure
// computation over the raw event structure. Tests cross-check them so a bug
// in one cannot silently validate the other.
package trace

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/vclock"
)

// Kind enumerates the event kinds of the system model (§2): computation,
// send, receive, and checkpoint.
type Kind int

// Event kinds. They start at one so the zero Kind is invalid and cannot be
// recorded accidentally.
const (
	KindCompute Kind = iota + 1
	KindSend
	KindRecv
	KindCheckpoint
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindCompute:
		return "compute"
	case KindSend:
		return "send"
	case KindRecv:
		return "recv"
	case KindCheckpoint:
		return "checkpoint"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one entry of a process's local history.
type Event struct {
	Proc  int        // process id, 0-based
	Seq   int        // position within the process's local history
	Kind  Kind       //
	Clock vclock.VC  // vector clock after the event
	Msg   MessageID  // set for send/recv events
	Peer  int        // destination (send) or source (recv)
	Chkpt Checkpoint // set for checkpoint events

	// Label carries an optional human-readable tag (e.g. the program
	// statement that produced the event).
	Label string
}

// MessageID uniquely identifies an application message within an execution.
// Sender plus a per-sender sequence number is unique because channels are
// FIFO and reliable.
type MessageID struct {
	From int
	To   int
	Seq  int // per (From,To) pair sequence number, starting at 0
}

// IsZero reports whether the id is unset.
func (m MessageID) IsZero() bool { return m == MessageID{} }

// Checkpoint identifies one checkpoint event. CFGIndex is the checkpoint's
// enumeration index i in the CFG (the C_i of §2); Instance counts the
// invocations of that same checkpoint statement by this process (a
// statement inside a loop yields several checkpoints with the same
// CFGIndex, per Definition 2.3).
type Checkpoint struct {
	Proc     int
	CFGIndex int
	Instance int
	EventSeq int // position of the checkpoint event in the local history
	Clock    vclock.VC
}

// String renders the checkpoint as C_{p,i}#inst.
func (c Checkpoint) String() string {
	return fmt.Sprintf("C{p%d,i%d}#%d", c.Proc, c.CFGIndex, c.Instance)
}

// Trace is a thread-safe recorder of an execution: one local history per
// process. The zero value is not usable; construct with NewTrace.
type Trace struct {
	mu        sync.Mutex
	n         int
	histories [][]Event
}

// NewTrace creates a trace for n processes.
func NewTrace(n int) *Trace {
	return &Trace{
		n:         n,
		histories: make([][]Event, n),
	}
}

// N returns the number of processes.
func (t *Trace) N() int { return t.n }

// Append records an event at the end of proc's local history, assigning its
// Seq. It returns the recorded event. Append copies the clock so callers may
// keep mutating theirs.
func (t *Trace) Append(e Event) Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	e.Seq = len(t.histories[e.Proc])
	e.Clock = e.Clock.Clone()
	if e.Kind == KindCheckpoint {
		e.Chkpt.Proc = e.Proc
		e.Chkpt.EventSeq = e.Seq
		e.Chkpt.Clock = e.Clock
	}
	t.histories[e.Proc] = append(t.histories[e.Proc], e)
	return e
}

// History returns a copy of proc's local history.
func (t *Trace) History(proc int) []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	h := make([]Event, len(t.histories[proc]))
	copy(h, t.histories[proc])
	return h
}

// Events returns a copy of all local histories.
func (t *Trace) Events() [][]Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	all := make([][]Event, t.n)
	for p := range t.histories {
		all[p] = make([]Event, len(t.histories[p]))
		copy(all[p], t.histories[p])
	}
	return all
}

// Len returns the total number of recorded events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	total := 0
	for _, h := range t.histories {
		total += len(h)
	}
	return total
}

// Checkpoints returns every checkpoint event in the trace, ordered by
// process then local sequence.
func (t *Trace) Checkpoints() []Checkpoint {
	var cps []Checkpoint
	for _, h := range t.Events() {
		for _, e := range h {
			if e.Kind == KindCheckpoint {
				cps = append(cps, e.Chkpt)
			}
		}
	}
	return cps
}

// Cut is a set of checkpoints, at most one per process (§2: "a set of
// checkpoints consisting of one checkpoint from each process").
type Cut []Checkpoint

// Validate checks the structural cut property: exactly one checkpoint per
// process of an n-process execution.
func (c Cut) Validate(n int) error {
	if len(c) != n {
		return fmt.Errorf("cut has %d checkpoints, want one per each of %d processes", len(c), n)
	}
	seen := make(map[int]bool, n)
	for _, cp := range c {
		if cp.Proc < 0 || cp.Proc >= n {
			return fmt.Errorf("checkpoint %v names process out of range [0,%d)", cp, n)
		}
		if seen[cp.Proc] {
			return fmt.Errorf("cut has two checkpoints for process %d", cp.Proc)
		}
		seen[cp.Proc] = true
	}
	return nil
}

// ErrNoCheckpoint is returned by StraightCut when some process has no i-th
// checkpoint, so the straight cut R_i does not exist.
var ErrNoCheckpoint = errors.New("trace: process has no checkpoint with requested index")

// StraightCut returns R_i of Definition 2.3: for each process, the LATEST
// checkpoint whose CFGIndex is i. It fails with ErrNoCheckpoint if some
// process never took an i-th checkpoint.
func (t *Trace) StraightCut(i int) (Cut, error) {
	cut := make(Cut, 0, t.n)
	for p, h := range t.Events() {
		latest := Checkpoint{Proc: -1}
		found := false
		for _, e := range h {
			if e.Kind == KindCheckpoint && e.Chkpt.CFGIndex == i {
				latest = e.Chkpt
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("%w: process %d, index %d", ErrNoCheckpoint, p, i)
		}
		cut = append(cut, latest)
	}
	return cut, nil
}

// CheckpointIndexes returns the sorted set of CFG checkpoint indexes that
// appear anywhere in the trace.
func (t *Trace) CheckpointIndexes() []int {
	set := make(map[int]bool)
	for _, cp := range t.Checkpoints() {
		set[cp.CFGIndex] = true
	}
	idx := make([]int, 0, len(set))
	for i := range set {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	return idx
}

// IsRecoveryLine decides Definition 2.1 using the vector clocks captured at
// checkpoint time: the cut is a recovery line iff no checkpoint in it
// happened before another.
func IsRecoveryLine(cut Cut) bool {
	for i := range cut {
		for j := range cut {
			if i != j && cut[i].Clock.Before(cut[j].Clock) {
				return false
			}
		}
	}
	return true
}

// FirstViolation returns a pair (a, b) of checkpoints in the cut with
// a happened-before b, or ok=false when the cut is a recovery line. It is
// the diagnostic companion of IsRecoveryLine.
func FirstViolation(cut Cut) (a, b Checkpoint, ok bool) {
	for i := range cut {
		for j := range cut {
			if i != j && cut[i].Clock.Before(cut[j].Clock) {
				return cut[i], cut[j], true
			}
		}
	}
	return Checkpoint{}, Checkpoint{}, false
}
