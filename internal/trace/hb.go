package trace

import (
	"fmt"
)

// HB computes the happened-before relation of a finished trace directly from
// its structure: the transitive closure of process order and send→recv
// pairs (Lamport's definition, §2 of the paper). It is deliberately
// independent of the vector clocks stamped during execution so the two can
// cross-check each other.
type HB struct {
	n      int
	events [][]Event
	// sendOf maps a message id to the (proc, seq) of its send event.
	sendOf map[MessageID][2]int
	// reach[p][s] is, per peer process q, the minimal seq of an event of q
	// reachable from event (p, s). A value of len(events[q]) means none.
	reach [][][]int
}

// NewHB snapshots the trace and precomputes reachability. The cost is
// O(n · totalEvents) space and time, fine for verification workloads.
func NewHB(t *Trace) (*HB, error) {
	events := t.Events()
	h := &HB{
		n:      t.N(),
		events: events,
		sendOf: make(map[MessageID][2]int),
	}
	for p, hist := range events {
		for s, e := range hist {
			if e.Kind == KindSend {
				if _, dup := h.sendOf[e.Msg]; dup {
					return nil, fmt.Errorf("trace: duplicate send of message %+v", e.Msg)
				}
				h.sendOf[e.Msg] = [2]int{p, s}
			}
		}
	}
	h.computeReach()
	return h, nil
}

// computeReach walks each local history backwards. For event (p,s), the set
// of reachable peer events is the union of what the next local event
// reaches and, if (p,s) is a send, what the matching recv reaches — plus the
// recv itself.
func (h *HB) computeReach() {
	// recvAt maps message id -> (proc, seq) of the receive event.
	recvAt := make(map[MessageID][2]int)
	for p, hist := range h.events {
		for s, e := range hist {
			if e.Kind == KindRecv {
				recvAt[e.Msg] = [2]int{p, s}
			}
		}
	}

	h.reach = make([][][]int, h.n)
	for p := range h.events {
		h.reach[p] = make([][]int, len(h.events[p]))
	}

	// Process events in reverse global topological order. Because message
	// edges can go both ways between processes, a single backwards pass per
	// process is not enough; iterate to a fixpoint. Histories are short in
	// verification runs, so the simple approach is fine.
	none := func(q int) int { return len(h.events[q]) }
	newRow := func() []int {
		row := make([]int, h.n)
		for q := range row {
			row[q] = none(q)
		}
		return row
	}
	for p := range h.events {
		for s := range h.events[p] {
			h.reach[p][s] = newRow()
		}
	}

	changed := true
	for changed {
		changed = false
		for p := range h.events {
			for s := len(h.events[p]) - 1; s >= 0; s-- {
				row := h.reach[p][s]
				merge := func(q, seq int) {
					if seq < row[q] {
						row[q] = seq
						changed = true
					}
				}
				// Local successor.
				if s+1 < len(h.events[p]) {
					merge(p, s+1)
					for q, seq := range h.reach[p][s+1] {
						merge(q, seq)
					}
				}
				// Message edge.
				if h.events[p][s].Kind == KindSend {
					if rv, ok := recvAt[h.events[p][s].Msg]; ok {
						merge(rv[0], rv[1])
						for q, seq := range h.reach[rv[0]][rv[1]] {
							merge(q, seq)
						}
					}
				}
			}
		}
	}
}

// Before reports whether event (p1,s1) happened before event (p2,s2).
func (h *HB) Before(p1, s1, p2, s2 int) bool {
	if p1 == p2 {
		return s1 < s2
	}
	if s1 >= len(h.events[p1]) || s2 >= len(h.events[p2]) {
		return false
	}
	return h.reach[p1][s1][p2] <= s2
}

// CutConsistentStructural decides Definition 2.1 with the structural
// happened-before relation rather than vector clocks.
func (h *HB) CutConsistentStructural(cut Cut) bool {
	for i := range cut {
		for j := range cut {
			if i == j {
				continue
			}
			if h.Before(cut[i].Proc, cut[i].EventSeq, cut[j].Proc, cut[j].EventSeq) {
				return false
			}
		}
	}
	return true
}

// CutConsistentByMessages decides consistency with the classic orphan-message
// criterion: the cut is inconsistent iff some message is received at or
// before the cut at its receiver but sent after the cut at its sender. For
// cuts of checkpoints this is equivalent to Definition 2.1; having a third
// formulation strengthens the cross-checks in tests.
func (h *HB) CutConsistentByMessages(cut Cut) bool {
	frontier := make([]int, h.n)
	for q := range frontier {
		frontier[q] = -1
	}
	for _, cp := range cut {
		frontier[cp.Proc] = cp.EventSeq
	}
	for p, hist := range h.events {
		for s, e := range hist {
			if e.Kind != KindRecv || s > frontier[p] {
				continue
			}
			send, ok := h.sendOf[e.Msg]
			if !ok {
				// Unmatched receive: treat as inconsistent evidence.
				return false
			}
			if send[1] > frontier[send[0]] {
				return false // orphan message
			}
		}
	}
	return true
}

// Validate checks structural well-formedness of the trace: every receive has
// a matching send, no message is received twice, and per-channel receives
// respect FIFO order of the sends.
func Validate(t *Trace) error {
	events := t.Events()
	sends := make(map[MessageID]bool)
	for _, hist := range events {
		for _, e := range hist {
			if e.Kind == KindSend {
				if sends[e.Msg] {
					return fmt.Errorf("trace: message %+v sent twice", e.Msg)
				}
				sends[e.Msg] = true
			}
		}
	}
	recvd := make(map[MessageID]bool)
	// lastSeq tracks, per (from,to) channel, the last received per-channel
	// sequence number to verify FIFO delivery.
	type channel struct{ from, to int }
	lastSeq := make(map[channel]int)
	for to, hist := range events {
		for _, e := range hist {
			if e.Kind != KindRecv {
				continue
			}
			if !sends[e.Msg] {
				return fmt.Errorf("trace: process %d received unsent message %+v", to, e.Msg)
			}
			if recvd[e.Msg] {
				return fmt.Errorf("trace: message %+v received twice", e.Msg)
			}
			recvd[e.Msg] = true
			ch := channel{from: e.Msg.From, to: e.Msg.To}
			if last, ok := lastSeq[ch]; ok && e.Msg.Seq <= last {
				return fmt.Errorf("trace: FIFO violation on channel %d->%d: seq %d after %d",
					ch.from, ch.to, e.Msg.Seq, last)
			}
			lastSeq[ch] = e.Msg.Seq
		}
	}
	return nil
}

// CheckClockConsistency verifies that the vector clocks recorded in the
// trace agree with the structural happened-before relation on every event
// pair. Used in tests to cross-check the runtime's clock stamping.
func (h *HB) CheckClockConsistency() error {
	for p1, h1 := range h.events {
		for s1, e1 := range h1 {
			for p2, h2 := range h.events {
				for s2, e2 := range h2 {
					if p1 == p2 && s1 == s2 {
						continue
					}
					structural := h.Before(p1, s1, p2, s2)
					clocked := e1.Clock.Before(e2.Clock)
					if structural != clocked {
						return fmt.Errorf(
							"trace: hb mismatch for (%d,%d)->(%d,%d): structural=%v clocks=%v (%v vs %v)",
							p1, s1, p2, s2, structural, clocked, e1.Clock, e2.Clock)
					}
				}
			}
		}
	}
	return nil
}
