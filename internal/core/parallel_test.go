package core_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/mpl"
	"repro/internal/verify"
)

// TestParallelAnalysisMatchesSerial pins the determinism contract of the
// parallel analysis fan-out (place.Options.Workers / par.Map): for every
// corpus program and a batch of generated large programs, the transform
// must produce BYTE-identical output for any worker count — same final
// program, same move sequence, same orderings, same violation report,
// same iteration count. Run under -race this also exercises the
// fan-out's synchronization.
func TestParallelAnalysisMatchesSerial(t *testing.T) {
	progs := make(map[string]*mpl.Program)
	for name, p := range corpus.All() {
		progs[name] = p
	}
	// ≥8 generated large programs (deep loop nests, hundreds of
	// statements) so the parallel path sees inputs big enough for the
	// fan-out to actually split work.
	for seed := int64(1); seed <= 8; seed++ {
		progs[fmt.Sprintf("large_s%d", seed)] = verify.GenerateLarge(seed, 6)
	}

	for name, p := range progs {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			conf := core.DefaultConfig
			conf.Workers = 1 // serial reference
			want, err := core.Transform(p, conf)
			if err != nil {
				t.Fatalf("serial transform: %v", err)
			}
			wantSrc := mpl.Format(want.Program)

			for _, workers := range []int{0, 2, 3, 4, 8} {
				conf.Workers = workers
				got, err := core.Transform(p, conf)
				if err != nil {
					t.Fatalf("workers=%d: transform: %v", workers, err)
				}
				if src := mpl.Format(got.Program); src != wantSrc {
					t.Errorf("workers=%d: program differs from serial\nserial:\n%s\nparallel:\n%s", workers, wantSrc, src)
				}
				if got.Phase3.Iterations != want.Phase3.Iterations {
					t.Errorf("workers=%d: iterations = %d, serial %d", workers, got.Phase3.Iterations, want.Phase3.Iterations)
				}
				if !reflect.DeepEqual(got.Phase3.Moves, want.Phase3.Moves) {
					t.Errorf("workers=%d: moves differ\nserial:   %+v\nparallel: %+v", workers, want.Phase3.Moves, got.Phase3.Moves)
				}
				if !reflect.DeepEqual(got.Phase3.Orderings, want.Phase3.Orderings) {
					t.Errorf("workers=%d: orderings differ\nserial:   %+v\nparallel: %+v", workers, want.Phase3.Orderings, got.Phase3.Orderings)
				}
				if !reflect.DeepEqual(got.Phase3.InitialViolations, want.Phase3.InitialViolations) {
					t.Errorf("workers=%d: initial violations differ", workers)
				}
				if got.CheckpointCount() != want.CheckpointCount() {
					t.Errorf("workers=%d: checkpoint count = %d, serial %d", workers, got.CheckpointCount(), want.CheckpointCount())
				}
			}
		})
	}
}
