package core

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/mpl"
)

func TestTransformBareProgramInsertsAndPlaces(t *testing.T) {
	src := `
program bare
var x, i
proc {
    i = 0
    while i < 4 {
        if rank % 2 == 0 {
            send(rank + 1, x)
            recv(rank + 1, x)
        } else {
            recv(rank - 1, x)
            send(rank - 1, x)
        }
        i = i + 1
    }
}
`
	rep, err := TransformSource(src, DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Phase1 == nil || len(rep.Phase1.Inserted) == 0 {
		t.Fatal("Phase I did not insert checkpoints")
	}
	if rep.CheckpointCount() < 1 {
		t.Fatal("no checkpoint indexes in result")
	}
	violations, err := Verify(rep.Program, DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Errorf("transformed program not safe: %+v", violations)
	}
}

func TestTransformJacobiFig2(t *testing.T) {
	rep, err := Transform(corpus.JacobiFig2(3), DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Phase3 == nil || len(rep.Phase3.InitialViolations) == 0 {
		t.Error("Fig2 initial violations not reported")
	}
	if len(rep.Phase3.Moves) == 0 {
		t.Error("Fig2 should require moves")
	}
	violations, err := Verify(rep.Program, DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Errorf("still violating: %+v", violations)
	}
}

func TestTransformDoesNotMutateInput(t *testing.T) {
	p := corpus.JacobiFig2(2)
	before := mpl.Format(p)
	if _, err := Transform(p, DefaultConfig); err != nil {
		t.Fatal(err)
	}
	if mpl.Format(p) != before {
		t.Error("input mutated")
	}
}

func TestTransformSkipInsert(t *testing.T) {
	rep, err := Transform(corpus.JacobiFig1(2), Config{SkipInsert: true, PreserveLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Phase1 != nil {
		t.Error("Phase I ran despite SkipInsert")
	}
}

func TestTransformSourceParseError(t *testing.T) {
	if _, err := TransformSource("not a program", DefaultConfig); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestExtendedDOT(t *testing.T) {
	dot, err := ExtendedDOT(corpus.JacobiFig2(2), DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"digraph", "msg", "chkpt"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}

func TestVerifyFlagsUntransformed(t *testing.T) {
	violations, err := Verify(corpus.JacobiFig2(2), DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) == 0 {
		t.Error("Verify missed Fig2's violation")
	}
	safe, err := Verify(corpus.JacobiFig1(2), DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	if len(safe) != 0 {
		t.Errorf("Fig1 flagged: %+v", safe)
	}
}

func TestTransformWholeCorpus(t *testing.T) {
	for name, p := range corpus.All() {
		t.Run(name, func(t *testing.T) {
			rep, err := Transform(p, DefaultConfig)
			if err != nil {
				t.Fatal(err)
			}
			violations, err := Verify(rep.Program, DefaultConfig)
			if err != nil {
				t.Fatal(err)
			}
			if len(violations) != 0 {
				t.Errorf("unsafe result: %+v", violations)
			}
		})
	}
}

func BenchmarkTransformCorpus(b *testing.B) {
	progs := corpus.All()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range progs {
			if _, err := Transform(p, DefaultConfig); err != nil {
				b.Fatal(err)
			}
		}
	}
}
