package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mpl"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Example_transform runs the full offline pipeline on the paper's Figure 2
// program shape and shows that the transformed placement is safe.
func Example_transform() {
	src := `
program example
const N = 2
var x, y, i
proc {
    i = 0
    while i < N {
        if rank % 2 == 0 {
            chkpt
            send(rank + 1, x)
            recv(rank + 1, y)
        } else {
            recv(rank - 1, y)
            send(rank - 1, x)
            chkpt
        }
        i = i + 1
    }
}
`
	before, err := core.TransformSource(src, core.DefaultConfig)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("violations found: %d\n", len(before.Phase3.InitialViolations))
	fmt.Printf("moves applied:    %d\n", len(before.Phase3.Moves))

	after, err := core.Verify(before.Program, core.DefaultConfig)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("violations left:  %d\n", len(after))
	// Output:
	// violations found: 1
	// moves applied:    1
	// violations left:  0
}

// Example_runtime executes a transformed program and checks the straight
// cut on the recorded trace.
func Example_runtime() {
	src := `
program example
var x
proc {
    x = rank
    chkpt
    if rank == 0 {
        send(1, x)
    }
    if rank == 1 {
        recv(0, x)
    }
}
`
	rep, err := core.TransformSource(src, core.DefaultConfig)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(sim.Config{Program: rep.Program, Nproc: 2})
	if err != nil {
		log.Fatal(err)
	}
	cut, err := res.Trace.StraightCut(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recovery line:", trace.IsRecoveryLine(cut))
	fmt.Println("rank 1 x:", res.FinalVars[1]["x"])
	// Output:
	// recovery line: true
	// rank 1 x: 0
}

// Example_builder constructs a program with the fluent API instead of
// parsing source.
func Example_builder() {
	prog := mpl.NewBuilder("ring").
		Vars("tok").
		Chkpt().
		Send(mpl.Mod(mpl.Add(mpl.Rank(), mpl.Int(1)), mpl.Nproc()), "tok").
		Recv(mpl.Mod(mpl.Sub(mpl.Rank(), mpl.Int(1)), mpl.Nproc()), "tok").
		MustProgram()
	violations, err := core.Verify(prog, core.DefaultConfig)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("safe as written:", len(violations) == 0)
	// Output:
	// safe as written: true
}
