// Package core is the public entry point of the library: it runs the
// paper's three offline phases end to end on an MPL program.
//
//	Phase I   (internal/insert):  static checkpoint insertion and path
//	                              equalization, driven by an optimal-
//	                              interval model;
//	Phase II  (internal/match):   send/receive matching → extended CFG Ĝ
//	                              (Algorithm 3.1);
//	Phase III (internal/place):   checkpoint movement until every straight
//	                              cut of checkpoints is a recovery line in
//	                              any further execution (Algorithm 3.2,
//	                              Condition 1 / Theorem 3.2).
//
// The output program checkpoints with zero runtime coordination: processes
// execute chkpt statements locally, and the collection of the latest i-th
// checkpoints of every process — the straight cut R_i — is always a
// consistent recovery line.
package core

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/insert"
	"repro/internal/match"
	"repro/internal/mpl"
	"repro/internal/place"
)

// Config configures the pipeline. The zero value applies Phase I only when
// the program has no checkpoints, uses the paper's cost constants, and
// enables the loop-preservation optimization.
type Config struct {
	// CostModel drives Phase I interval selection; the zero value uses
	// insert.DefaultCostModel.
	CostModel insert.CostModel
	// Match configures Phase II (solver bounds, faithful one-to-one mode).
	Match match.Options
	// PreserveLoops enables the §3.3 loop optimization (DefaultConfig sets
	// it).
	PreserveLoops bool
	// MaxIterations bounds Phase III's fixpoint (0 = default).
	MaxIterations int
	// SkipInsert disables Phase I entirely (the program must already
	// contain checkpoint statements).
	SkipInsert bool
	// Workers fans Phase III's per-checkpoint-node reachability analysis
	// across goroutines (0 = GOMAXPROCS, 1 = serial). The transformed
	// program and full report are identical for every worker count.
	Workers int
}

// DefaultConfig is the recommended configuration.
var DefaultConfig = Config{PreserveLoops: true}

func (c Config) costModel() insert.CostModel {
	if c.CostModel == (insert.CostModel{}) {
		return insert.DefaultCostModel
	}
	return c.CostModel
}

// Report is the outcome of the full pipeline.
type Report struct {
	// Program is the transformed program, safe to execute with
	// coordination-free checkpointing.
	Program *mpl.Program
	// Phase1 is the insertion plan (nil when SkipInsert).
	Phase1 *insert.Plan
	// Phase3 is the placement result, including initial violations, moves,
	// and loop-preserved orderings.
	Phase3 *place.Result
	// Enumeration maps checkpoint statement ids to straight-cut indexes in
	// the final program.
	Enumeration *cfg.Enumeration
}

// CheckpointCount returns the number of straight-cut indexes of the final
// program.
func (r *Report) CheckpointCount() int {
	if r.Enumeration == nil {
		return 0
	}
	return r.Enumeration.Count
}

// Transform runs the three phases on a program. The input is not mutated.
func Transform(p *mpl.Program, conf Config) (*Report, error) {
	if err := mpl.Check(p); err != nil {
		return nil, fmt.Errorf("core: input program invalid: %w", err)
	}
	work := mpl.Clone(p)
	rep := &Report{}

	if !conf.SkipInsert {
		plan, err := insert.InsertCheckpoints(work, conf.costModel())
		if err != nil {
			return nil, fmt.Errorf("core: phase I: %w", err)
		}
		rep.Phase1 = plan
	}

	placed, err := place.Ensure(work, place.Options{
		Match:         conf.Match,
		PreserveLoops: conf.PreserveLoops,
		MaxIterations: conf.MaxIterations,
		Workers:       conf.Workers,
		// One arena per Transform: every fixpoint round re-carves its
		// scratch from the same backing storage instead of allocating.
		Arena: &cfg.Arena{},
		// work is already this call's private clone; Ensure may own it.
		AssumeOwned: true,
	})
	if err != nil {
		return nil, fmt.Errorf("core: phase III: %w", err)
	}
	rep.Phase3 = placed
	rep.Program = placed.Program
	rep.Enumeration = placed.Enumeration
	return rep, nil
}

// TransformSource parses MPL source and transforms it.
func TransformSource(src string, conf Config) (*Report, error) {
	p, err := mpl.Parse(src)
	if err != nil {
		return nil, err
	}
	return Transform(p, conf)
}

// Verify checks Condition 1 on a program without transforming it: it
// returns the violations that would make some straight cut inconsistent.
// An empty slice means every straight cut of checkpoints is a recovery
// line in any execution (Theorem 3.2).
func Verify(p *mpl.Program, conf Config) ([]place.Violation, error) {
	violations, _, err := place.Check(p, place.Options{
		Match:         conf.Match,
		PreserveLoops: conf.PreserveLoops,
		MaxIterations: conf.MaxIterations,
	})
	return violations, err
}

// ExtendedDOT renders the extended CFG Ĝ of a program (control flow plus
// message edges) in Graphviz dot syntax — the paper's Figure 4 view.
func ExtendedDOT(p *mpl.Program, conf Config) (string, error) {
	x, err := match.BuildExtended(p, conf.Match)
	if err != nil {
		return "", err
	}
	return x.G.DOT(p.Name, x.MessageEdgesAsCFG()), nil
}
