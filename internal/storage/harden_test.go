package storage

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/vclock"
)

func snap(proc, index, instance int, vars map[string]int) Snapshot {
	return Snapshot{
		Proc: proc, CFGIndex: index, Instance: instance,
		Clock: vclock.VC{uint64(instance + 1), uint64(instance + 1)},
		Vars:  vars, PC: "0",
	}
}

func TestFileCorruptionSurfacesTypedError(t *testing.T) {
	dir := t.TempDir()
	f, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Save(snap(0, 1, 0, map[string]int{"x": 7})); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "p0_i1_k0.ckpt")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit in the body: the CRC must catch it.
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Get(0, 1, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get on bit-flipped file = %v, want ErrCorrupt", err)
	}
	if _, err := f.Latest(0, 1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Latest on bit-flipped file = %v, want ErrCorrupt", err)
	}
	// Truncation (a torn write on a store without atomic rename).
	if err := os.WriteFile(path, raw[:2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Get(0, 1, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get on truncated file = %v, want ErrCorrupt", err)
	}
}

func TestFileScrubQuarantinesCorruptAndCleansTemp(t *testing.T) {
	dir := t.TempDir()
	f, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		if err := f.Save(snap(0, 1, k, map[string]int{"x": k})); err != nil {
			t.Fatal(err)
		}
	}
	// Damage the newest instance and plant an abandoned temp file.
	path := filepath.Join(dir, "p0_i1_k2.ckpt")
	if err := os.WriteFile(path, []byte("xx"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ".tmp-ckpt-123"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := f.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) != 1 || rep.TempFiles != 1 {
		t.Fatalf("scrub report = %+v, want 1 quarantined + 1 temp file", rep)
	}
	q := rep.Quarantined[0]
	if q.Proc != 0 || q.CFGIndex != 1 || q.Instance != 2 {
		t.Fatalf("quarantined %+v, want p0 i1 k2", q)
	}
	// The damaged file moved aside, the namespace healed: Latest falls to
	// the older instance and the key can be saved again.
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, "p0_i1_k2.ckpt")); err != nil {
		t.Fatalf("quarantined file not preserved: %v", err)
	}
	latest, err := f.Latest(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if latest.Instance != 1 {
		t.Fatalf("latest after scrub = instance %d, want 1", latest.Instance)
	}
	if err := f.Save(snap(0, 1, 2, map[string]int{"x": 99})); err != nil {
		t.Fatalf("re-save of quarantined key: %v", err)
	}
	// A clean store scrubs to an empty report.
	rep, err = f.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) != 0 || rep.TempFiles != 0 {
		t.Fatalf("second scrub = %+v, want empty", rep)
	}
}

func TestIncrementalCorruptBaseSurfacesErrCorrupt(t *testing.T) {
	inc := NewIncremental(4)
	// "c" never changes after the base record, so the deltas do not carry
	// it — rot on it in the base poisons every dependent reconstruction.
	for k := 0; k < 3; k++ {
		if err := inc.Save(snap(0, 1, k, map[string]int{"x": k, "c": 42})); err != nil {
			t.Fatal(err)
		}
	}
	if err := inc.Tamper(0, 1, 0, func(vars map[string]int) { vars["c"] = 999 }); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		if _, err := inc.Get(0, 1, k); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Get instance %d = %v, want ErrCorrupt", k, err)
		}
	}
	if _, err := inc.Latest(0, 1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Latest = %v, want ErrCorrupt", err)
	}
	if _, err := inc.List(0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("List = %v, want ErrCorrupt", err)
	}
}

func TestIncrementalRotMaskedByLaterDeltaIsLocal(t *testing.T) {
	// Rot a delta's own contribution: the damaged record reconstructs
	// wrong (ErrCorrupt), but a later delta overwrites the rotted variable
	// so dependents reconstruct the CORRECT state and stay readable —
	// verification flags exactly the records whose state is wrong.
	inc := NewIncremental(8)
	for k := 0; k < 3; k++ {
		if err := inc.Save(snap(0, 1, k, map[string]int{"x": k})); err != nil {
			t.Fatal(err)
		}
	}
	if err := inc.Tamper(0, 1, 1, func(vars map[string]int) { vars["x"] = 999 }); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Get(0, 1, 1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("rotted record = %v, want ErrCorrupt", err)
	}
	if s, err := inc.Get(0, 1, 0); err != nil || s.Vars["x"] != 0 {
		t.Fatalf("record below rot = %v, %v; want clean x=0", s.Vars, err)
	}
	if s, err := inc.Get(0, 1, 2); err != nil || s.Vars["x"] != 2 {
		t.Fatalf("record above rot = %v, %v; want clean x=2 (delta overwrote the rot)", s.Vars, err)
	}
}

func TestIncrementalSaveSelfHealsAfterCorruptPrev(t *testing.T) {
	inc := NewIncremental(8)
	for k := 0; k < 2; k++ {
		if err := inc.Save(snap(0, 1, k, map[string]int{"x": k})); err != nil {
			t.Fatal(err)
		}
	}
	if err := inc.Tamper(0, 1, 1, func(vars map[string]int) { vars["x"] = 999 }); err != nil {
		t.Fatal(err)
	}
	// The next save cannot delta against a corrupt predecessor; it must
	// store a full record and stay readable.
	if err := inc.Save(snap(0, 1, 2, map[string]int{"x": 2})); err != nil {
		t.Fatal(err)
	}
	s, err := inc.Get(0, 1, 2)
	if err != nil {
		t.Fatalf("snapshot saved after corruption unreadable: %v", err)
	}
	if s.Vars["x"] != 2 {
		t.Fatalf("x = %d, want 2", s.Vars["x"])
	}
}

func TestIncrementalScrubTruncatesDamagedChain(t *testing.T) {
	inc := NewIncremental(8)
	for k := 0; k < 4; k++ {
		if err := inc.Save(snap(0, 1, k, map[string]int{"x": k, "c": 42})); err != nil {
			t.Fatal(err)
		}
	}
	if err := inc.Save(snap(1, 1, 0, map[string]int{"x": 5})); err != nil {
		t.Fatal(err)
	}
	// Injecting a stray variable into a delta poisons that record and
	// every later reconstruction (no subsequent delta overwrites "c").
	if err := inc.Tamper(0, 1, 1, func(vars map[string]int) { vars["c"] = 999 }); err != nil {
		t.Fatal(err)
	}
	rep, err := inc.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	// Instances 1..3 reconstruct through the rotted delta: all quarantined
	// (the chain is truncated at the first damaged record).
	if len(rep.Quarantined) != 3 {
		t.Fatalf("quarantined %d, want 3 (%+v)", len(rep.Quarantined), rep)
	}
	// Below the damage and other processes survive.
	if s, err := inc.Get(0, 1, 0); err != nil || s.Vars["x"] != 0 {
		t.Fatalf("instance 0 after scrub = %v, %v", s.Vars, err)
	}
	if _, err := inc.Get(1, 1, 0); err != nil {
		t.Fatalf("proc 1 after scrub: %v", err)
	}
	if _, err := inc.Get(0, 1, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("quarantined instance = %v, want ErrNotFound", err)
	}
	// Replay can regenerate the quarantined instances.
	if err := inc.Save(snap(0, 1, 1, map[string]int{"x": 1, "c": 42})); err != nil {
		t.Fatalf("re-save after scrub: %v", err)
	}
	if s, err := inc.Get(0, 1, 1); err != nil || s.Vars["x"] != 1 {
		t.Fatalf("regenerated instance = %v, %v", s.Vars, err)
	}
}
