package storage

import (
	"errors"
	"os"
	"testing"
)

// TestFileStoreFsyncGate pins fsyncgate semantics for the file store: a
// failed data fsync fails the Save with ErrFsync — permanent, NOT
// ErrTransient — and leaves no half-published snapshot behind.
func TestFileStoreFsyncGate(t *testing.T) {
	orig := fsyncData
	defer func() { fsyncData = orig }()

	f, err := NewFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fail := true
	fsyncData = func(fd *os.File) error {
		if fail {
			return errors.New("injected EIO")
		}
		return orig(fd)
	}
	err = f.Save(nsSnap(0, 0, 0, 1))
	if !errors.Is(err, ErrFsync) {
		t.Fatalf("Save under failing fsync = %v, want ErrFsync", err)
	}
	if errors.Is(err, ErrTransient) {
		t.Fatal("ErrFsync is marked transient: the retry layer would re-run an fsync that can silently lie")
	}
	// Nothing half-published: the key reads as missing and the temp file is
	// gone.
	if _, err := f.Get(0, 0, 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after failed-fsync save = %v, want ErrNotFound", err)
	}
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("failed save left %d file(s) behind: %v", len(entries), entries)
	}

	// The failure path rides crash→recovery: after the device heals and the
	// caller replays, the SAME key saves cleanly (no duplicate residue).
	fail = false
	if err := f.Save(nsSnap(0, 0, 0, 1)); err != nil {
		t.Fatalf("replayed save after fsync healed: %v", err)
	}
	if _, err := f.Get(0, 0, 0); err != nil {
		t.Fatalf("Get after replay: %v", err)
	}
}

// TestFileStoreDirFsyncGate: a failed DIRECTORY fsync after the rename
// must un-publish the snapshot — a nil return there could acknowledge a
// checkpoint that a crash then loses with the directory entry.
func TestFileStoreDirFsyncGate(t *testing.T) {
	orig := fsyncData
	defer func() { fsyncData = orig }()

	f, err := NewFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fsyncData = func(fd *os.File) error {
		st, serr := fd.Stat()
		if serr == nil && st.IsDir() {
			return errors.New("injected dir EIO")
		}
		return orig(fd)
	}
	err = f.Save(nsSnap(1, 2, 0, 1))
	if !errors.Is(err, ErrFsync) {
		t.Fatalf("Save under failing dir fsync = %v, want ErrFsync", err)
	}
	if _, err := f.Get(1, 2, 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("snapshot readable after un-vouchable save: %v", err)
	}
	fsyncData = orig
	if err := f.Save(nsSnap(1, 2, 0, 1)); err != nil {
		t.Fatalf("replayed save after dir fsync healed: %v", err)
	}
}
