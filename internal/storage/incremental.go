package storage

import (
	"fmt"
	"sort"
	"sync"
)

// Incremental is a Store that saves most snapshots as deltas against the
// process's previous checkpoint — the classic incremental-checkpointing
// optimization the paper's related work surveys (compiler-assisted
// checkpointing can identify what changed; here the store diffs the
// variable maps). Every FullEvery-th snapshot per process is stored in
// full to bound reconstruction chains. Readers always receive fully
// reconstructed snapshots; the delta encoding is invisible outside.
type Incremental struct {
	mu sync.Mutex
	// FullEvery is the full-snapshot period (default 8 when 0).
	fullEvery int
	// recs holds the raw records in per-process temporal order.
	recs map[int][]record
	// byKey indexes records by (proc, index, instance).
	byKey map[key]int // position within recs[proc]

	fullBytes  int
	deltaBytes int
}

// record is one stored checkpoint, possibly a delta.
type record struct {
	snap  Snapshot // for deltas, Vars holds only changed/new variables
	delta bool
	// removedVars lists variables that disappeared relative to the base
	// (MPL variables never disappear, but the store does not rely on
	// that).
	removedVars []string
}

var _ Store = (*Incremental)(nil)

// NewIncremental creates an incremental store. fullEvery <= 0 selects the
// default period of 8.
func NewIncremental(fullEvery int) *Incremental {
	if fullEvery <= 0 {
		fullEvery = 8
	}
	return &Incremental{
		fullEvery: fullEvery,
		recs:      make(map[int][]record),
		byKey:     make(map[key]int),
	}
}

// Save implements Store.
func (inc *Incremental) Save(s Snapshot) error {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	k := key{s.Proc, s.CFGIndex, s.Instance}
	if _, dup := inc.byKey[k]; dup {
		return fmt.Errorf("%w: proc=%d index=%d instance=%d", ErrDuplicate, s.Proc, s.CFGIndex, s.Instance)
	}
	chain := inc.recs[s.Proc]
	full := len(chain)%inc.fullEvery == 0
	rec := record{snap: s.clone()}
	if full || len(chain) == 0 {
		inc.fullBytes += approxSize(rec.snap.Vars)
	} else {
		// Delta against the previous record's reconstructed state.
		prev := inc.reconstructLocked(s.Proc, len(chain)-1)
		deltaVars := make(map[string]int)
		for name, v := range s.Vars {
			if pv, ok := prev.Vars[name]; !ok || pv != v {
				deltaVars[name] = v
			}
		}
		for name := range prev.Vars {
			if _, ok := s.Vars[name]; !ok {
				rec.removedVars = append(rec.removedVars, name)
			}
		}
		rec.delta = true
		rec.snap.Vars = deltaVars
		inc.deltaBytes += approxSize(deltaVars)
	}
	inc.byKey[k] = len(chain)
	inc.recs[s.Proc] = append(chain, rec)
	return nil
}

// reconstructLocked rebuilds the full snapshot at position pos of proc's
// chain by replaying deltas from the nearest full record.
func (inc *Incremental) reconstructLocked(proc, pos int) Snapshot {
	chain := inc.recs[proc]
	start := pos
	for start > 0 && chain[start].delta {
		start--
	}
	out := chain[start].snap.clone()
	for i := start + 1; i <= pos; i++ {
		r := chain[i]
		// Non-Vars fields always come from the target record.
		vars := out.Vars
		out = r.snap.clone()
		merged := make(map[string]int, len(vars)+len(out.Vars))
		for k, v := range vars {
			merged[k] = v
		}
		for k, v := range r.snap.Vars {
			merged[k] = v
		}
		for _, k := range r.removedVars {
			delete(merged, k)
		}
		out.Vars = merged
	}
	return out
}

// Get implements Store.
func (inc *Incremental) Get(proc, cfgIndex, instance int) (Snapshot, error) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	pos, ok := inc.byKey[key{proc, cfgIndex, instance}]
	if !ok {
		return Snapshot{}, fmt.Errorf("%w: proc=%d index=%d instance=%d", ErrNotFound, proc, cfgIndex, instance)
	}
	return inc.reconstructLocked(proc, pos), nil
}

// Latest implements Store.
func (inc *Incremental) Latest(proc, cfgIndex int) (Snapshot, error) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	best := -1
	bestInst := -1
	for k, pos := range inc.byKey {
		if k.proc == proc && k.index == cfgIndex && k.instance > bestInst {
			bestInst = k.instance
			best = pos
		}
	}
	if best < 0 {
		return Snapshot{}, fmt.Errorf("%w: proc=%d index=%d", ErrNotFound, proc, cfgIndex)
	}
	return inc.reconstructLocked(proc, best), nil
}

// List implements Store.
func (inc *Incremental) List(proc int) ([]Snapshot, error) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	chain := inc.recs[proc]
	out := make([]Snapshot, 0, len(chain))
	for pos := range chain {
		out = append(out, inc.reconstructLocked(proc, pos))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].CFGIndex != out[j].CFGIndex {
			return out[i].CFGIndex < out[j].CFGIndex
		}
		return out[i].Instance < out[j].Instance
	})
	return out, nil
}

// Indexes implements Store.
func (inc *Incremental) Indexes(n int) ([]int, error) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	count := make(map[int]map[int]bool)
	for k := range inc.byKey {
		if count[k.index] == nil {
			count[k.index] = make(map[int]bool)
		}
		count[k.index][k.proc] = true
	}
	var out []int
	for idx, procs := range count {
		if len(procs) == n {
			out = append(out, idx)
		}
	}
	sort.Ints(out)
	return out, nil
}

// Delete implements Store. Only the TAIL of a process's chain can be
// deleted (rollback pruning deletes newest-first), because removing an
// interior delta would corrupt later reconstructions.
func (inc *Incremental) Delete(proc, cfgIndex, instance int) error {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	k := key{proc, cfgIndex, instance}
	pos, ok := inc.byKey[k]
	if !ok {
		return fmt.Errorf("%w: proc=%d index=%d instance=%d", ErrNotFound, proc, cfgIndex, instance)
	}
	chain := inc.recs[proc]
	if pos != len(chain)-1 {
		return fmt.Errorf("storage: incremental delete must be newest-first: record %d of %d", pos, len(chain))
	}
	inc.recs[proc] = chain[:pos]
	delete(inc.byKey, k)
	return nil
}

// SizeStats reports the approximate stored variable-map bytes, full vs
// delta — the savings incremental checkpointing exists for.
type SizeStats struct {
	FullBytes  int
	DeltaBytes int
}

// Stats returns the accumulated size statistics.
func (inc *Incremental) Stats() SizeStats {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return SizeStats{FullBytes: inc.fullBytes, DeltaBytes: inc.deltaBytes}
}

// approxSize estimates the serialized size of a variable map (names plus
// 8-byte values).
func approxSize(vars map[string]int) int {
	n := 0
	for name := range vars {
		n += len(name) + 8
	}
	return n
}
