package storage

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
)

// Incremental is a Store that saves most snapshots as deltas against the
// process's previous checkpoint — the classic incremental-checkpointing
// optimization the paper's related work surveys (compiler-assisted
// checkpointing can identify what changed; here the store diffs the
// variable maps). Every FullEvery-th snapshot per process is stored in
// full to bound reconstruction chains. Readers always receive fully
// reconstructed snapshots; the delta encoding is invisible outside.
//
// Every record carries a CRC of the fully reconstructed snapshot, taken at
// save time. Reconstruction re-verifies it, so damage anywhere in a delta
// chain — in particular a corrupt base record — surfaces as ErrCorrupt on
// every read that depends on it, never as a silently bogus reconstruction.
// Scrub quarantines damaged chains by truncation (an interior record of a
// delta chain cannot be excised without breaking its dependents).
type Incremental struct {
	mu sync.Mutex
	// FullEvery is the full-snapshot period (default 8 when 0).
	fullEvery int
	// recs holds the raw records in per-process temporal order.
	recs map[int][]record
	// byKey indexes records by (proc, index, instance).
	byKey map[key]int // position within recs[proc]

	fullBytes  int
	deltaBytes int
}

// record is one stored checkpoint, possibly a delta.
type record struct {
	snap  Snapshot // for deltas, Vars holds only changed/new variables
	delta bool
	// removedVars lists variables that disappeared relative to the base
	// (MPL variables never disappear, but the store does not rely on
	// that).
	removedVars []string
	// crc is the checksum of the fully reconstructed snapshot this record
	// represents, computed at save time and re-verified on every
	// reconstruction.
	crc uint32
}

var _ Store = (*Incremental)(nil)
var _ Scrubber = (*Incremental)(nil)

// NewIncremental creates an incremental store. fullEvery <= 0 selects the
// default period of 8.
func NewIncremental(fullEvery int) *Incremental {
	if fullEvery <= 0 {
		fullEvery = 8
	}
	return &Incremental{
		fullEvery: fullEvery,
		recs:      make(map[int][]record),
		byKey:     make(map[key]int),
	}
}

// snapshotCRC fingerprints a fully reconstructed snapshot. JSON encoding
// sorts map keys, so the fingerprint is deterministic. A nil variable map
// is normalized to empty: delta reconstruction always rebuilds a concrete
// map, and the fingerprint must not depend on that representation detail.
func snapshotCRC(s Snapshot) uint32 {
	if s.Vars == nil {
		s.Vars = map[string]int{}
	}
	b, err := json.Marshal(s)
	if err != nil {
		// Snapshot contains only maps, slices, and scalars; Marshal cannot
		// fail on it. Guard anyway so a future field cannot silently
		// disable verification.
		panic(fmt.Sprintf("storage: snapshot not encodable: %v", err))
	}
	return crc32.ChecksumIEEE(b)
}

// Save implements Store.
func (inc *Incremental) Save(s Snapshot) error {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	k := key{s.Proc, s.CFGIndex, s.Instance}
	if _, dup := inc.byKey[k]; dup {
		return fmt.Errorf("%w: proc=%d index=%d instance=%d", ErrDuplicate, s.Proc, s.CFGIndex, s.Instance)
	}
	chain := inc.recs[s.Proc]
	full := len(chain)%inc.fullEvery == 0
	rec := record{snap: s.clone(), crc: snapshotCRC(s)}
	storeFull := full || len(chain) == 0
	var prev Snapshot
	if !storeFull {
		// Delta against the previous record's reconstructed state. If the
		// previous record turns out to be corrupt, do not chain onto it:
		// store a full record instead so new checkpoints stay readable
		// even on a damaged chain (self-healing writes).
		var err error
		prev, err = inc.reconstructLocked(s.Proc, len(chain)-1)
		if err != nil {
			storeFull = true
		}
	}
	if storeFull {
		inc.fullBytes += approxSize(rec.snap.Vars)
	} else {
		deltaVars := make(map[string]int)
		for name, v := range s.Vars {
			if pv, ok := prev.Vars[name]; !ok || pv != v {
				deltaVars[name] = v
			}
		}
		for name := range prev.Vars {
			if _, ok := s.Vars[name]; !ok {
				rec.removedVars = append(rec.removedVars, name)
			}
		}
		rec.delta = true
		rec.snap.Vars = deltaVars
		inc.deltaBytes += approxSize(deltaVars)
	}
	inc.byKey[k] = len(chain)
	inc.recs[s.Proc] = append(chain, rec)
	return nil
}

// reconstructLocked rebuilds the full snapshot at position pos of proc's
// chain by replaying deltas from the nearest full record, then verifies
// the result against the checksum taken at save time. A mismatch anywhere
// in the chain (a flipped bit in a base record corrupts every dependent
// reconstruction) returns ErrCorrupt.
func (inc *Incremental) reconstructLocked(proc, pos int) (Snapshot, error) {
	chain := inc.recs[proc]
	start := pos
	for start > 0 && chain[start].delta {
		start--
	}
	out := chain[start].snap.clone()
	for i := start + 1; i <= pos; i++ {
		r := chain[i]
		// Non-Vars fields always come from the target record.
		vars := out.Vars
		out = r.snap.clone()
		merged := make(map[string]int, len(vars)+len(out.Vars))
		for k, v := range vars {
			merged[k] = v
		}
		for k, v := range r.snap.Vars {
			merged[k] = v
		}
		for _, k := range r.removedVars {
			delete(merged, k)
		}
		out.Vars = merged
	}
	if got := snapshotCRC(out); got != chain[pos].crc {
		return Snapshot{}, fmt.Errorf("%w: proc=%d index=%d instance=%d reconstruction crc %08x != %08x (damaged delta chain)",
			ErrCorrupt, proc, chain[pos].snap.CFGIndex, chain[pos].snap.Instance, got, chain[pos].crc)
	}
	return out, nil
}

// Get implements Store.
func (inc *Incremental) Get(proc, cfgIndex, instance int) (Snapshot, error) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	pos, ok := inc.byKey[key{proc, cfgIndex, instance}]
	if !ok {
		return Snapshot{}, fmt.Errorf("%w: proc=%d index=%d instance=%d", ErrNotFound, proc, cfgIndex, instance)
	}
	return inc.reconstructLocked(proc, pos)
}

// Latest implements Store.
func (inc *Incremental) Latest(proc, cfgIndex int) (Snapshot, error) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	best := -1
	bestInst := -1
	for k, pos := range inc.byKey {
		if k.proc == proc && k.index == cfgIndex && k.instance > bestInst {
			bestInst = k.instance
			best = pos
		}
	}
	if best < 0 {
		return Snapshot{}, fmt.Errorf("%w: proc=%d index=%d", ErrNotFound, proc, cfgIndex)
	}
	return inc.reconstructLocked(proc, best)
}

// List implements Store.
func (inc *Incremental) List(proc int) ([]Snapshot, error) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	chain := inc.recs[proc]
	out := make([]Snapshot, 0, len(chain))
	for pos := range chain {
		s, err := inc.reconstructLocked(proc, pos)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].CFGIndex != out[j].CFGIndex {
			return out[i].CFGIndex < out[j].CFGIndex
		}
		return out[i].Instance < out[j].Instance
	})
	return out, nil
}

// Indexes implements Store.
func (inc *Incremental) Indexes(n int) ([]int, error) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	count := make(map[int]map[int]bool)
	for k := range inc.byKey {
		if count[k.index] == nil {
			count[k.index] = make(map[int]bool)
		}
		count[k.index][k.proc] = true
	}
	var out []int
	for idx, procs := range count {
		if len(procs) == n {
			out = append(out, idx)
		}
	}
	sort.Ints(out)
	return out, nil
}

// Delete implements Store. Only the TAIL of a process's chain can be
// deleted (rollback pruning deletes newest-first), because removing an
// interior delta would corrupt later reconstructions.
func (inc *Incremental) Delete(proc, cfgIndex, instance int) error {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	k := key{proc, cfgIndex, instance}
	pos, ok := inc.byKey[k]
	if !ok {
		return fmt.Errorf("%w: proc=%d index=%d instance=%d", ErrNotFound, proc, cfgIndex, instance)
	}
	chain := inc.recs[proc]
	if pos != len(chain)-1 {
		return fmt.Errorf("storage: incremental delete must be newest-first: record %d of %d", pos, len(chain))
	}
	inc.recs[proc] = chain[:pos]
	delete(inc.byKey, k)
	return nil
}

// Tamper mutates the raw stored variable map of one record WITHOUT
// updating its integrity checksum — a fault-injection hook for chaos and
// corruption tests that simulates bit rot inside a persisted record. For a
// delta record the map holds only the delta; for a full record (a delta
// chain's base) it holds the whole state, so tampering with it poisons
// every reconstruction chained on top.
func (inc *Incremental) Tamper(proc, cfgIndex, instance int, mutate func(vars map[string]int)) error {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	pos, ok := inc.byKey[key{proc, cfgIndex, instance}]
	if !ok {
		return fmt.Errorf("%w: proc=%d index=%d instance=%d", ErrNotFound, proc, cfgIndex, instance)
	}
	mutate(inc.recs[proc][pos].snap.Vars)
	return nil
}

// Scrub implements Scrubber. A damaged record cannot be excised from the
// middle of a delta chain (its dependents would reconstruct garbage), so
// quarantine truncates each process's chain at the first record whose
// reconstruction fails verification; healthy records above it are counted
// as collateral.
func (inc *Incremental) Scrub() (ScrubReport, error) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	var rep ScrubReport
	for proc, chain := range inc.recs {
		cut := -1
		for pos := range chain {
			if _, err := inc.reconstructLocked(proc, pos); err != nil {
				cut = pos
				break
			}
		}
		if cut < 0 {
			continue
		}
		for pos := cut; pos < len(chain); pos++ {
			s := chain[pos].snap
			k := key{proc, s.CFGIndex, s.Instance}
			delete(inc.byKey, k)
			if _, err := inc.reconstructLocked(proc, pos); err != nil {
				rep.Quarantined = append(rep.Quarantined, SnapshotRef{
					Proc: proc, CFGIndex: s.CFGIndex, Instance: s.Instance,
					Reason: err.Error(),
				})
			} else {
				rep.Collateral++
			}
		}
		inc.recs[proc] = chain[:cut]
	}
	return rep, nil
}

// SizeStats reports the approximate stored variable-map bytes, full vs
// delta — the savings incremental checkpointing exists for.
type SizeStats struct {
	FullBytes  int
	DeltaBytes int
}

// Stats returns the accumulated size statistics.
func (inc *Incremental) Stats() SizeStats {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return SizeStats{FullBytes: inc.fullBytes, DeltaBytes: inc.deltaBytes}
}

// approxSize estimates the serialized size of a variable map (names plus
// 8-byte values).
func approxSize(vars map[string]int) int {
	n := 0
	for name := range vars {
		n += len(name) + 8
	}
	return n
}
