package storage

import (
	"fmt"
	"sort"
)

// Namespace is a per-job view of a shared Store. A fleet runs thousands of
// jobs against one backing store; every job numbers its processes 0..n-1
// and its checkpoints from (index, instance) counters that restart at the
// same values, so two jobs sharing a store raw would collide on
// (proc, cfgIndex, instance) keys — ErrDuplicate for the loser, or worse,
// recovery lines assembled from a stranger's snapshots. A Namespace shifts
// the job's process numbers into a disjoint range of the backing store
// (job*nproc .. job*nproc+nproc-1) on the way in and shifts them back on
// the way out, so each job sees a private store while sharing the backing
// store's durability, contention, and fault behaviour. Over the file store
// the ranges map to disjoint p<N> filename families, so jobs cannot
// clobber each other's checkpoint files either.
//
// Namespace forwards the Scrubber interface when the backing store
// implements it. A scrub only quarantines records that FAIL integrity
// verification, so forwarding cannot garbage-collect a neighbour job's
// healthy state — and without forwarding, quarantine silently no-ops for
// every namespaced fleet job, leaving damaged keys permanently colliding
// with the checkpoints replay regenerates. The report is translated into
// the job's own process numbering; damage quarantined in OTHER jobs'
// ranges (healed as a side effect of the shared pass) is omitted from
// Quarantined and folded into Collateral, since from this job's view it is
// cleanup it did not ask for.
type Namespace struct {
	inner Store
	base  int
	nproc int
}

var _ Store = (*Namespace)(nil)

// NewNamespace returns job's private view of inner, where the job runs
// nproc processes. Distinct jobs (with the same nproc) get disjoint key
// ranges; job 0 with any nproc is the identity prefix.
func NewNamespace(inner Store, job, nproc int) (*Namespace, error) {
	if job < 0 || nproc <= 0 {
		return nil, fmt.Errorf("storage: namespace requires job >= 0 and nproc > 0 (got job=%d nproc=%d)", job, nproc)
	}
	return &Namespace{inner: inner, base: job * nproc, nproc: nproc}, nil
}

// check rejects process numbers outside the job's range: an out-of-range
// proc would silently alias another job's keys, which is exactly the bug
// namespaces exist to prevent.
func (ns *Namespace) check(proc int) error {
	if proc < 0 || proc >= ns.nproc {
		return fmt.Errorf("storage: namespace proc %d out of range [0,%d)", proc, ns.nproc)
	}
	return nil
}

// Save implements Store: the snapshot lands under the job's shifted
// process number.
func (ns *Namespace) Save(s Snapshot) error {
	if err := ns.check(s.Proc); err != nil {
		return err
	}
	s.Proc += ns.base
	return ns.inner.Save(s)
}

// Latest implements Store.
func (ns *Namespace) Latest(proc, cfgIndex int) (Snapshot, error) {
	if err := ns.check(proc); err != nil {
		return Snapshot{}, err
	}
	s, err := ns.inner.Latest(proc+ns.base, cfgIndex)
	if err != nil {
		return Snapshot{}, err
	}
	s.Proc -= ns.base
	return s, nil
}

// Get implements Store.
func (ns *Namespace) Get(proc, cfgIndex, instance int) (Snapshot, error) {
	if err := ns.check(proc); err != nil {
		return Snapshot{}, err
	}
	s, err := ns.inner.Get(proc+ns.base, cfgIndex, instance)
	if err != nil {
		return Snapshot{}, err
	}
	s.Proc -= ns.base
	return s, nil
}

// List implements Store.
func (ns *Namespace) List(proc int) ([]Snapshot, error) {
	if err := ns.check(proc); err != nil {
		return nil, err
	}
	snaps, err := ns.inner.List(proc + ns.base)
	if err != nil {
		return nil, err
	}
	for i := range snaps {
		snaps[i].Proc -= ns.base
	}
	return snaps, nil
}

// Indexes implements Store: the candidate straight cuts of THIS job only.
// The backing store's own Indexes would mix every job's processes into one
// count, so the intersection is rebuilt here from the job's per-process
// listings.
func (ns *Namespace) Indexes(n int) ([]int, error) {
	if n <= 0 || n > ns.nproc {
		return nil, fmt.Errorf("storage: namespace Indexes(%d) outside job size %d", n, ns.nproc)
	}
	counts := make(map[int]int)
	for p := 0; p < n; p++ {
		snaps, err := ns.inner.List(p + ns.base)
		if err != nil {
			return nil, err
		}
		seen := make(map[int]bool)
		for _, s := range snaps {
			if !seen[s.CFGIndex] {
				seen[s.CFGIndex] = true
				counts[s.CFGIndex]++
			}
		}
	}
	var out []int
	for idx, c := range counts {
		if c == n {
			out = append(out, idx)
		}
	}
	sort.Ints(out)
	return out, nil
}

// Delete implements Store.
func (ns *Namespace) Delete(proc, cfgIndex, instance int) error {
	if err := ns.check(proc); err != nil {
		return err
	}
	return ns.inner.Delete(proc+ns.base, cfgIndex, instance)
}

// Scrub implements Scrubber when the backing store does. The inner scrub
// verifies and quarantines across the whole shared store; the returned
// report is re-scoped to this job: quarantined keys inside the job's
// process range come back in local numbering, and quarantines outside it
// are counted as Collateral rather than listed, so a job never sees
// another job's key space. When the backing store is not a Scrubber the
// scrub is a clean no-op, preserving the old behaviour for memory-backed
// fleets.
func (ns *Namespace) Scrub() (ScrubReport, error) {
	scr, ok := ns.inner.(Scrubber)
	if !ok {
		return ScrubReport{}, nil
	}
	rep, err := scr.Scrub()
	if err != nil {
		return ScrubReport{}, err
	}
	out := ScrubReport{Collateral: rep.Collateral, TempFiles: rep.TempFiles}
	for _, ref := range rep.Quarantined {
		if ref.Proc >= ns.base && ref.Proc < ns.base+ns.nproc {
			ref.Proc -= ns.base
			out.Quarantined = append(out.Quarantined, ref)
		} else {
			out.Collateral++
		}
	}
	return out, nil
}

var _ Scrubber = (*Namespace)(nil)
