package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/storage"
	"sync"
)

// commitReq is one mutation in flight to a shard's committer.
type commitReq struct {
	kind  byte // kindPut or kindTomb
	key   recKey
	frame []byte
	done  chan error
}

// shard is one independent append log: a chain of segment files named by a
// manifest, an in-memory index of the latest live record per key, and a
// committer goroutine that group-commits batches of mutations.
type shard struct {
	w  *Store
	id int

	reqCh chan *commitReq

	mu sync.Mutex
	// Durable state (all guarded by mu).
	segs       []uint64 // segment ids in replay order; last is active
	files      map[uint64]*os.File
	sizes      map[uint64]int64
	activeSize int64
	syncedSize int64 // active bytes covered by the last successful fsync
	nextSeg    uint64
	// Index state.
	index   map[recKey]loc
	corrupt map[recKey]string
	// Injection.
	injSeq uint64
}

func (sh *shard) segPath(id uint64) string {
	return filepath.Join(sh.w.dir, fmt.Sprintf("s%d-%d.seg", sh.id, id))
}
func (sh *shard) manifestPath() string {
	return filepath.Join(sh.w.dir, fmt.Sprintf("s%d.manifest", sh.id))
}

// consult asks the injector (when configured) for a fault decision at one
// durability point. Callers hold sh.mu, so per-shard decisions are a
// well-ordered stream.
func (sh *shard) consult(op Op, size int) Fault {
	inj := sh.w.opts.Injector
	if inj == nil || sh.w.killed.Load() {
		return Fault{}
	}
	seq := sh.injSeq
	sh.injSeq++
	return inj.Decide(op, sh.id, seq, size)
}

// crash applies the kill damage model and poisons the store. Everything
// written to the active segment since the last successful fsync sits in
// the (simulated) page cache; a crash loses it except for the keep bytes
// the injector lets land. Already-synced bytes always survive.
func (sh *shard) crash(op Op, keep int) error {
	f := sh.files[sh.segs[len(sh.segs)-1]]
	if f != nil {
		unsynced := sh.activeSize - sh.syncedSize
		if int64(keep) > unsynced {
			keep = int(unsynced)
		}
		if keep < 0 {
			keep = 0
		}
		survive := sh.syncedSize + int64(keep)
		_ = f.Truncate(survive)
		sh.activeSize = survive
	}
	sh.w.kill(fmt.Sprintf("injected crash at %s (shard %d)", op, sh.id))
	return fmt.Errorf("%w: injected at %s", ErrCrashed, op)
}

// commitLoop is the shard's group-commit goroutine: it blocks for one
// request, drains up to MaxBatch-1 more without blocking, and commits them
// all under one fsync.
func (sh *shard) commitLoop() {
	defer sh.w.wg.Done()
	for req := range sh.reqCh {
		batch := []*commitReq{req}
		for len(batch) < sh.w.opts.MaxBatch {
			select {
			case r, ok := <-sh.reqCh:
				if !ok {
					sh.commit(batch)
					sh.failRemaining()
					return
				}
				batch = append(batch, r)
			default:
				goto full
			}
		}
	full:
		sh.commit(batch)
	}
	sh.failRemaining()
}

// failRemaining answers requests that arrived after channel close began.
func (sh *shard) failRemaining() {
	for req := range sh.reqCh {
		req.done <- ErrClosed
	}
}

// commit validates, appends, fsyncs, and acks one batch.
func (sh *shard) commit(batch []*commitReq) {
	sh.mu.Lock()
	defer sh.mu.Unlock()

	if err := sh.w.checkAlive(); err != nil {
		for _, r := range batch {
			r.done <- err
		}
		return
	}

	// Validate each request against the index plus what this same batch
	// already staged; rejected requests are acked now and excluded.
	type staged struct {
		req *commitReq
		off int64 // offset within the batch buffer
	}
	var (
		accepted []staged
		buf      []byte
		flipOK   [][2]int
		inBatch  = make(map[recKey]byte)
	)
	for _, r := range batch {
		if err := sh.validateLocked(r, inBatch); err != nil {
			r.done <- err
			continue
		}
		inBatch[r.key] = r.kind
		accepted = append(accepted, staged{req: r, off: int64(len(buf))})
		if r.kind == kindPut {
			// Injected bit flips model media rot of an acknowledged
			// snapshot BODY: damage there must surface as ErrCorrupt with
			// the key still attributable, which needs the frame header and
			// key bytes intact. Tombstones carry no body and stay exempt.
			flipOK = append(flipOK, [2]int{
				len(buf) + frameHeader + payloadHead,
				len(buf) + len(r.frame),
			})
		}
		buf = append(buf, r.frame...)
	}
	if len(accepted) == 0 {
		return
	}

	base := sh.activeSize
	if err := sh.appendLocked(buf, flipOK); err != nil {
		for _, s := range accepted {
			s.req.done <- err
		}
		return
	}

	// The fsync landed: apply index updates and acknowledge.
	seg := sh.segs[len(sh.segs)-1]
	for _, s := range accepted {
		k := s.req.key
		switch s.req.kind {
		case kindPut:
			sh.index[k] = loc{seg: seg, off: base + s.off, size: len(s.req.frame)}
			delete(sh.corrupt, k)
			sh.w.saves.Add(1)
		case kindTomb:
			delete(sh.index, k)
			delete(sh.corrupt, k)
		}
		s.req.done <- nil
	}
	sh.w.batches.Add(1)

	if sh.activeSize >= sh.w.opts.MaxSegmentBytes {
		if err := sh.rotateLocked(); err != nil {
			// Rotation failure poisons the store (appendLocked on a stale
			// active could lose the ordering invariants); already-acked
			// saves above are durable regardless.
			sh.w.kill(fmt.Sprintf("rotation failed: %v", err))
		}
	}
}

// validateLocked enforces Save/Delete semantics before bytes are staged.
func (sh *shard) validateLocked(r *commitReq, inBatch map[recKey]byte) error {
	_, live := sh.index[r.key]
	_, marked := sh.corrupt[r.key]
	if k, ok := inBatch[r.key]; ok {
		live = k == kindPut
		marked = false
	}
	switch r.kind {
	case kindPut:
		// Checkpoints are immutable once taken — but re-saving a
		// quarantined key is an atomic rewrite that repairs it, matching
		// the chaos wrapper's repair semantics.
		if live {
			return fmt.Errorf("%w: %s", storage.ErrDuplicate, r.key)
		}
	case kindTomb:
		if !live && !marked {
			return fmt.Errorf("%w: %s", storage.ErrNotFound, r.key)
		}
	}
	return nil
}

// appendLocked writes buf to the active segment and fsyncs, consulting the
// injector before and after both steps. flipOK lists the byte ranges an
// injected flip may damage (put-record bodies). A real fsync failure
// poisons the store (fsyncgate): the kernel may have dropped the dirty
// pages, so the only safe continuation is reopen-and-recover.
func (sh *shard) appendLocked(buf []byte, flipOK [][2]int) error {
	f := sh.files[sh.segs[len(sh.segs)-1]]

	ft := sh.consult(OpAppend, len(buf))
	if ft.Kill == KillBefore {
		return sh.crash(OpAppend, ft.Keep)
	}
	if ft.Flip && len(flipOK) > 0 {
		r := flipOK[ft.FlipAt%len(flipOK)]
		if span := r[1] - r[0]; span > 0 {
			buf[r[0]+ft.FlipAt%span] ^= 0x40
		}
	}
	if _, err := f.WriteAt(buf, sh.activeSize); err != nil {
		sh.w.kill(fmt.Sprintf("append failed: %v", err))
		return fmt.Errorf("wal: append: %w", err)
	}
	sh.activeSize += int64(len(buf))
	if ft.Kill == KillAfter {
		return sh.crash(OpAppend, ft.Keep)
	}

	st := sh.consult(OpSync, len(buf))
	if st.Kill == KillBefore {
		return sh.crash(OpSync, st.Keep)
	}
	if err := fsyncFile(f); err != nil {
		sh.w.kill(fmt.Sprintf("fsync failed: %v", err))
		return fmt.Errorf("%w: wal segment: %v", storage.ErrFsync, err)
	}
	sh.syncedSize = sh.activeSize
	if st.Kill == KillAfter {
		// The data IS durable — the ack just never happens.
		return sh.crash(OpSync, 0)
	}
	return nil
}

// fsyncFile is a seam for fsync-failure injection in tests.
var fsyncFile = func(f *os.File) error { return f.Sync() }

// readLocked loads and CRC-verifies the record at l. A record that fails
// verification here was acknowledged and then damaged on media (an
// injected bit flip): the key is quarantined on the spot.
func (sh *shard) readLocked(k recKey, l loc) (storage.Snapshot, error) {
	f := sh.files[l.seg]
	if f == nil {
		return storage.Snapshot{}, fmt.Errorf("wal: %s: segment %d not open", k, l.seg)
	}
	buf := make([]byte, l.size)
	if _, err := f.ReadAt(buf, l.off); err != nil {
		return storage.Snapshot{}, fmt.Errorf("wal: read %s: %w", k, err)
	}
	ev, _, ok := parseRecordAt(buf, 0)
	if !ok || ev.kind != kindPut || ev.key != k {
		sh.corrupt[k] = "crc mismatch at read"
		delete(sh.index, k)
		return storage.Snapshot{}, fmt.Errorf("%w: %s: record failed verification", storage.ErrCorrupt, k)
	}
	return decodeSnapshot(k, buf[frameHeader+payloadHead:])
}

func (sh *shard) get(k recKey) (storage.Snapshot, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if reason, marked := sh.corrupt[k]; marked {
		return storage.Snapshot{}, fmt.Errorf("%w: %s: %s", storage.ErrCorrupt, k, reason)
	}
	l, ok := sh.index[k]
	if !ok {
		return storage.Snapshot{}, fmt.Errorf("%w: %s", storage.ErrNotFound, k)
	}
	return sh.readLocked(k, l)
}

func (sh *shard) latest(proc, cfgIndex int) (storage.Snapshot, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	best, bestCorrupt, found := recKey{}, "", false
	for k := range sh.index {
		if k.proc == proc && k.index == cfgIndex && (!found || k.instance > best.instance) {
			best, bestCorrupt, found = k, "", true
		}
	}
	for k, reason := range sh.corrupt {
		if k.proc == proc && k.index == cfgIndex && (!found || k.instance > best.instance) {
			best, bestCorrupt, found = k, reason, true
		}
	}
	if !found {
		return storage.Snapshot{}, fmt.Errorf("%w: proc=%d index=%d", storage.ErrNotFound, proc, cfgIndex)
	}
	if bestCorrupt != "" {
		return storage.Snapshot{}, fmt.Errorf("%w: %s: %s", storage.ErrCorrupt, best, bestCorrupt)
	}
	return sh.readLocked(best, sh.index[best])
}

func (sh *shard) list(proc int) ([]storage.Snapshot, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for k, reason := range sh.corrupt {
		if k.proc == proc {
			return nil, fmt.Errorf("%w: %s: %s", storage.ErrCorrupt, k, reason)
		}
	}
	var keys []recKey
	for k := range sh.index {
		if k.proc == proc {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].index != keys[j].index {
			return keys[i].index < keys[j].index
		}
		return keys[i].instance < keys[j].instance
	})
	out := make([]storage.Snapshot, 0, len(keys))
	for _, k := range keys {
		s, err := sh.readLocked(k, sh.index[k])
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// scrub durably tombstones every quarantined key in this shard so the mark
// does not survive a reopen and the key can be saved again.
func (sh *shard) scrub(rep *storage.ScrubReport) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(sh.corrupt) == 0 {
		return nil
	}
	keys := make([]recKey, 0, len(sh.corrupt))
	for k := range sh.corrupt {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.proc != b.proc {
			return a.proc < b.proc
		}
		if a.index != b.index {
			return a.index < b.index
		}
		return a.instance < b.instance
	})
	var buf []byte
	for _, k := range keys {
		buf = append(buf, encodeFrame(kindTomb, k, nil)...)
	}
	if err := sh.appendLocked(buf, nil); err != nil {
		return err
	}
	for _, k := range keys {
		rep.Quarantined = append(rep.Quarantined, storage.SnapshotRef{
			Proc: k.proc, CFGIndex: k.index, Instance: k.instance, Reason: sh.corrupt[k],
		})
		delete(sh.corrupt, k)
		delete(sh.index, k)
	}
	return nil
}

func (sh *shard) closeFiles() error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var first error
	for _, f := range sh.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	sh.files = map[uint64]*os.File{}
	return first
}

// openShard recovers one shard from its manifest and segments.
func openShard(w *Store, id int) (*shard, error) {
	sh := &shard{
		w:       w,
		id:      id,
		reqCh:   make(chan *commitReq, 4*w.opts.MaxBatch),
		files:   make(map[uint64]*os.File),
		sizes:   make(map[uint64]int64),
		index:   make(map[recKey]loc),
		corrupt: make(map[recKey]string),
	}
	man, err := sh.loadManifest()
	if err != nil {
		return nil, err
	}
	if man == nil {
		// Fresh shard: manifest first, then the segment file — the same
		// order rotation uses, so a bootstrap crash leaves either nothing
		// or a manifest whose (last) segment is missing; both recover.
		m := manifest{Segments: []uint64{0}, Next: 1}
		if err := sh.writeManifest(m, false); err != nil {
			return nil, err
		}
		man = &m
	}
	if err := sh.cleanOrphans(*man); err != nil {
		return nil, err
	}
	sh.segs = append([]uint64(nil), man.Segments...)
	sh.nextSeg = man.Next
	if len(sh.segs) == 0 {
		return nil, fmt.Errorf("manifest lists no segments")
	}
	for i, seg := range sh.segs {
		last := i == len(sh.segs)-1
		if err := sh.recoverSegment(seg, last); err != nil {
			return nil, err
		}
	}
	return sh, nil
}

// recoverSegment opens, scans, and replays one segment. Only the LAST
// (active) segment may be missing (rotation crashed between manifest and
// file creation) or end in a torn tail (a crash mid-append) — torn tails
// there are truncated; everywhere else damage is quarantined.
func (sh *shard) recoverSegment(seg uint64, last bool) error {
	path := sh.segPath(seg)
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		if !last {
			return fmt.Errorf("segment %d named by manifest is missing", seg)
		}
		data = nil
	} else if err != nil {
		return fmt.Errorf("read segment %d: %w", seg, err)
	}

	events, tornStart := scanSegment(data)
	size := int64(len(data))
	if tornStart >= 0 {
		if last {
			size = tornStart
			sh.w.truncated += int64(len(data)) - tornStart
		} else {
			// A sealed segment was fsynced whole before the manifest named
			// its successor; a short tail here is media damage, not an
			// interrupted append.
			events = append(events, corruptEvent(data, int(tornStart), len(data)))
		}
	}

	// Replay last-event-wins into the shard maps.
	for _, ev := range events {
		if ev.off >= size {
			break
		}
		switch ev.kind {
		case kindPut:
			sh.index[ev.key] = loc{seg: seg, off: ev.off, size: ev.size}
			delete(sh.corrupt, ev.key)
			sh.w.recovered++
		case kindTomb:
			delete(sh.index, ev.key)
			delete(sh.corrupt, ev.key)
			sh.w.recovered++
		case kindMark:
			sh.corrupt[ev.key] = ev.reason
			delete(sh.index, ev.key)
			sh.w.recovered++
			sh.w.quarOnOpen++
		case kindCorruptRegion:
			if ev.keyOK {
				sh.corrupt[ev.key] = ev.reason
				delete(sh.index, ev.key)
				sh.w.quarOnOpen++
			}
		}
	}

	flags := os.O_RDWR | os.O_CREATE
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return fmt.Errorf("open segment %d: %w", seg, err)
	}
	if int64(len(data)) != size {
		if err := f.Truncate(size); err != nil {
			f.Close()
			return fmt.Errorf("truncate torn tail of segment %d: %w", seg, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("sync truncated segment %d: %w", seg, err)
		}
	}
	sh.files[seg] = f
	sh.sizes[seg] = size
	if last {
		sh.activeSize = size
		sh.syncedSize = size
	}
	return nil
}
