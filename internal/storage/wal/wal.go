// Package wal is a sharded, log-structured storage.Store: concurrent Saves
// are batched into group-committed appends (one fsync amortized over a
// batch) on per-shard append-only segment files with per-record CRC +
// length framing. Sharded in-memory indexes are rebuilt by scanning the
// segments on open; background compaction rewrites live records into fresh
// segments and atomically retires old ones through a manifest/rename
// protocol.
//
// Recovery of the log itself is crash-safe by construction:
//
//   - A Save is acknowledged only after the fsync covering its record
//     returns, so every nil-returning Save survives any later crash.
//   - A torn tail (a trailing frame cut short mid-append) is truncated on
//     open: it can only belong to an unacknowledged batch.
//   - A COMPLETE interior record that fails its CRC was acknowledged and
//     then damaged (bit rot); recovery quarantines its key through the
//     storage.ErrCorrupt / Scrubber path instead of aborting or — worse —
//     silently dropping it.
//   - Mid-rotation and mid-compaction crashes resolve via the manifest:
//     the per-shard manifest is replaced by atomic rename, segment files
//     not named by it are orphans and deleted, and the manifest is written
//     BEFORE a new segment file is created so an acknowledged record can
//     never sit in a file the manifest does not know.
package wal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/storage"
)

// ErrClosed reports an operation on a store after Close.
var ErrClosed = errors.New("wal: store closed")

// ErrCrashed reports an operation on a store after a simulated crash
// (injected by an Injector) or after a real fsync failure poisoned it
// (fsyncgate: once an fsync fails, the kernel may have dropped the dirty
// pages, so no later success can be trusted — the store must be reopened
// and recovered from what is actually on disk).
var ErrCrashed = errors.New("wal: store crashed")

// Options configures Open. The zero value is ready for production use.
type Options struct {
	// Shards is the number of independent append logs (default 8). Keys
	// are placed by hash of (proc, cfgIndex) so Latest stays single-shard.
	Shards int
	// MaxSegmentBytes rotates the active segment at this size (default 8 MiB).
	MaxSegmentBytes int64
	// MaxBatch caps how many Saves one group commit absorbs (default 128).
	MaxBatch int
	// CompactMinDeadBytes triggers auto-compaction of a shard's sealed
	// segments once they hold at least this many dead bytes (default 1 MiB).
	CompactMinDeadBytes int64
	// NoAutoCompact disables compaction after rotation; Compact() still works.
	NoAutoCompact bool
	// Injector, when set, is consulted at every durability point — test
	// harnesses use it for deterministic crash/torn-write/bit-flip injection.
	Injector Injector
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = 8 << 20
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 128
	}
	if o.CompactMinDeadBytes <= 0 {
		o.CompactMinDeadBytes = 1 << 20
	}
	return o
}

// Stats counts store activity since Open. The JSON tags are part of the
// telemetry snapshot schema (/snapshot.json).
type Stats struct {
	Saves       int64 `json:"saves"`   // acknowledged puts
	Batches     int64 `json:"batches"` // group commits (fsyncs for data)
	Rotations   int64 `json:"rotations"`
	Compactions int64 `json:"compactions"`
	// Recovered counts valid records replayed on Open; TruncatedBytes is
	// the torn tail discarded; QuarantinedOnOpen counts keys entering
	// recovery already corrupt.
	Recovered         int64 `json:"recovered"`
	TruncatedBytes    int64 `json:"truncated_bytes"`
	QuarantinedOnOpen int64 `json:"quarantined_on_open"`
}

// Store is the sharded group-commit log. It implements storage.Store and
// storage.Scrubber.
type Store struct {
	dir    string
	opts   Options
	shards []*shard

	killed     atomic.Bool
	killReason atomic.Value // string

	closeMu sync.RWMutex
	closed  bool
	wg      sync.WaitGroup

	saves       atomic.Int64
	batches     atomic.Int64
	rotations   atomic.Int64
	compactions atomic.Int64
	recovered   int64
	truncated   int64
	quarOnOpen  int64
}

var _ storage.Store = (*Store)(nil)
var _ storage.Scrubber = (*Store)(nil)

// Open creates (if needed) the store directory, recovers every shard's log
// — truncating torn tails, quarantining damaged interior records, deleting
// orphan files from interrupted rotations/compactions — and starts the
// per-shard group-commit goroutines.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	w := &Store{dir: dir, opts: opts}
	w.shards = make([]*shard, opts.Shards)
	for i := range w.shards {
		sh, err := openShard(w, i)
		if err != nil {
			for _, prev := range w.shards[:i] {
				prev.closeFiles()
			}
			return nil, fmt.Errorf("wal: shard %d: %w", i, err)
		}
		w.shards[i] = sh
	}
	for _, sh := range w.shards {
		w.wg.Add(1)
		go sh.commitLoop()
	}
	return w, nil
}

func (w *Store) shardFor(proc, index int) *shard {
	// splitmix64-style finalizer over the (proc, index) pair: all instances
	// of one key — and therefore one Latest — live in one shard.
	x := uint64(uint32(proc))<<32 | uint64(uint32(index))
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return w.shards[x%uint64(len(w.shards))]
}

// kill poisons the store: every subsequent operation fails ErrCrashed
// until the directory is reopened with Open.
func (w *Store) kill(reason string) {
	if w.killed.CompareAndSwap(false, true) {
		w.killReason.Store(reason)
	}
}

func (w *Store) checkAlive() error {
	if w.killed.Load() {
		reason, _ := w.killReason.Load().(string)
		return fmt.Errorf("%w: %s", ErrCrashed, reason)
	}
	return nil
}

// Killed reports whether the store has crashed (simulated or fsyncgate).
func (w *Store) Killed() bool { return w.killed.Load() }

// Save implements storage.Store. It returns nil only after the group
// commit containing the record has been fsynced.
func (w *Store) Save(s storage.Snapshot) error {
	if err := w.checkAlive(); err != nil {
		return err
	}
	body, err := json.Marshal(s)
	if err != nil {
		return fmt.Errorf("wal: encode snapshot: %w", err)
	}
	k := recKey{s.Proc, s.CFGIndex, s.Instance}
	return w.submit(&commitReq{
		kind:  kindPut,
		key:   k,
		frame: encodeFrame(kindPut, k, body),
	})
}

// Delete implements storage.Store: a durable tombstone append.
func (w *Store) Delete(proc, cfgIndex, instance int) error {
	if err := w.checkAlive(); err != nil {
		return err
	}
	k := recKey{proc, cfgIndex, instance}
	return w.submit(&commitReq{
		kind:  kindTomb,
		key:   k,
		frame: encodeFrame(kindTomb, k, nil),
	})
}

// submit hands one mutation to its shard's committer and waits for the ack.
func (w *Store) submit(req *commitReq) error {
	req.done = make(chan error, 1)
	sh := w.shardFor(req.key.proc, req.key.index)
	w.closeMu.RLock()
	if w.closed {
		w.closeMu.RUnlock()
		return ErrClosed
	}
	sh.reqCh <- req
	w.closeMu.RUnlock()
	return <-req.done
}

// Get implements storage.Store.
func (w *Store) Get(proc, cfgIndex, instance int) (storage.Snapshot, error) {
	if err := w.checkAlive(); err != nil {
		return storage.Snapshot{}, err
	}
	sh := w.shardFor(proc, cfgIndex)
	return sh.get(recKey{proc, cfgIndex, instance})
}

// Latest implements storage.Store. Like the chaos wrapper it is strict: if
// the highest instance for (proc, cfgIndex) is quarantined, Latest fails
// with ErrCorrupt rather than silently serving an older instance — the
// degradation ladder, not the store, decides what to fall back to.
func (w *Store) Latest(proc, cfgIndex int) (storage.Snapshot, error) {
	if err := w.checkAlive(); err != nil {
		return storage.Snapshot{}, err
	}
	sh := w.shardFor(proc, cfgIndex)
	return sh.latest(proc, cfgIndex)
}

// List implements storage.Store. It is strict the way the chaos wrapper
// is: any quarantined snapshot of proc fails the whole listing with
// ErrCorrupt, the way a chain scan stops at a damaged record.
func (w *Store) List(proc int) ([]storage.Snapshot, error) {
	if err := w.checkAlive(); err != nil {
		return nil, err
	}
	var out []storage.Snapshot
	for _, sh := range w.shards {
		part, err := sh.list(proc)
		if err != nil {
			return nil, err
		}
		out = append(out, part...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].CFGIndex != out[j].CFGIndex {
			return out[i].CFGIndex < out[j].CFGIndex
		}
		return out[i].Instance < out[j].Instance
	})
	return out, nil
}

// Indexes implements storage.Store. Quarantined keys still count as
// "present" (their proc did checkpoint there); the recovery ladder finds
// out via ErrCorrupt when it tries to load one — mirroring how the chaos
// wrapper's inner store keeps clean copies of marked keys.
func (w *Store) Indexes(n int) ([]int, error) {
	if err := w.checkAlive(); err != nil {
		return nil, err
	}
	count := make(map[int]map[int]bool)
	add := func(k recKey) {
		if count[k.index] == nil {
			count[k.index] = make(map[int]bool)
		}
		count[k.index][k.proc] = true
	}
	for _, sh := range w.shards {
		sh.mu.Lock()
		for k := range sh.index {
			add(k)
		}
		for k := range sh.corrupt {
			add(k)
		}
		sh.mu.Unlock()
	}
	var out []int
	for idx, procs := range count {
		if len(procs) == n {
			out = append(out, idx)
		}
	}
	sort.Ints(out)
	return out, nil
}

// Scrub implements storage.Scrubber: every quarantined key is durably
// tombstoned so the same (proc, index, instance) can be saved again and a
// reopen does not resurrect the mark.
func (w *Store) Scrub() (storage.ScrubReport, error) {
	var rep storage.ScrubReport
	if err := w.checkAlive(); err != nil {
		return rep, err
	}
	for _, sh := range w.shards {
		if err := sh.scrub(&rep); err != nil {
			return rep, err
		}
	}
	sort.Slice(rep.Quarantined, func(i, j int) bool {
		a, b := rep.Quarantined[i], rep.Quarantined[j]
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		if a.CFGIndex != b.CFGIndex {
			return a.CFGIndex < b.CFGIndex
		}
		return a.Instance < b.Instance
	})
	return rep, nil
}

// Compact rewrites every shard's sealed segments down to live records.
func (w *Store) Compact() error {
	if err := w.checkAlive(); err != nil {
		return err
	}
	for _, sh := range w.shards {
		sh.mu.Lock()
		err := sh.compactLocked(true)
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Close stops the committers and releases file handles. A killed store
// can still be Closed; pending Saves fail ErrClosed or ErrCrashed.
func (w *Store) Close() error {
	w.closeMu.Lock()
	if w.closed {
		w.closeMu.Unlock()
		return nil
	}
	w.closed = true
	for _, sh := range w.shards {
		close(sh.reqCh)
	}
	w.closeMu.Unlock()
	w.wg.Wait()
	var first error
	for _, sh := range w.shards {
		if err := sh.closeFiles(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Stats returns activity counters since Open.
func (w *Store) Stats() Stats {
	return Stats{
		Saves:             w.saves.Load(),
		Batches:           w.batches.Load(),
		Rotations:         w.rotations.Load(),
		Compactions:       w.compactions.Load(),
		Recovered:         w.recovered,
		TruncatedBytes:    w.truncated,
		QuarantinedOnOpen: w.quarOnOpen,
	}
}
