package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/storage"
	"repro/internal/vclock"
)

// fuzzSegBytes builds seed-corpus segment images: valid frames, torn
// tails, flipped bodies — the shapes recovery must survive.
func fuzzPut(proc, index, instance int) []byte {
	clk := vclock.New(proc + 1)
	clk[proc] = uint64(instance + 1)
	body, err := json.Marshal(storage.Snapshot{
		Proc: proc, CFGIndex: index, Instance: instance,
		Clock: clk, Vars: map[string]int{"x": 42}, PC: "s0",
	})
	if err != nil {
		panic(err)
	}
	return encodeFrame(kindPut, recKey{proc: proc, index: index, instance: instance}, body)
}

// FuzzWALRecover feeds arbitrary bytes to the WAL as the contents of a
// shard's single (active) segment and requires recovery to hold its two
// promises on ANY input:
//
//  1. Open never panics and never fails — a lone active segment can only
//     be torn (truncated) or rotted (quarantined), never fatal.
//  2. No CRC-mismatching record is ever served: every key recovery
//     indexes reads back cleanly with a matching embedded key; every key
//     it quarantines reads back as ErrCorrupt.
//
// It also pins recovery idempotence — a second open over the repaired
// directory reconstructs exactly the same index and quarantine sets —
// and that the repaired log still accepts writes.
// Run with `go test -fuzz FuzzWALRecover ./internal/storage/wal`; the
// committed corpus under testdata/fuzz runs under plain `go test`.
func FuzzWALRecover(f *testing.F) {
	valid := fuzzPut(0, 1, 0)
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-5]) // torn tail
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-3] ^= 0x40 // rotted body
	f.Add(flipped)
	two := append(append([]byte(nil), valid...), fuzzPut(2, 3, 1)...)
	f.Add(two)
	tomb := append(append([]byte(nil), valid...), encodeFrame(kindTomb, recKey{proc: 0, index: 1, instance: 0}, nil)...)
	f.Add(tomb)
	f.Add(encodeFrame(kindMark, recKey{proc: 5, index: 0, instance: 2}, []byte("prior quarantine")))
	huge := append([]byte(nil), valid...)
	binary.BigEndian.PutUint32(huge[4:], 1<<30) // length field past maxPayload
	f.Add(huge)
	f.Add([]byte("not a frame at all, just prose that happens to be on disk"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		body, err := json.Marshal(manifest{Segments: []uint64{0}, Next: 1})
		if err != nil {
			t.Fatal(err)
		}
		frame := make([]byte, 4+len(body))
		binary.BigEndian.PutUint32(frame, crc32.ChecksumIEEE(body))
		copy(frame[4:], body)
		if err := os.WriteFile(filepath.Join(dir, "s0.manifest"), frame, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "s0-0.seg"), data, 0o644); err != nil {
			t.Fatal(err)
		}

		w, err := Open(dir, Options{Shards: 1})
		if err != nil {
			t.Fatalf("recovery failed on a lone active segment: %v", err)
		}
		check := func(w *Store) (indexed, quarantined map[recKey]bool) {
			sh := w.shards[0]
			sh.mu.Lock()
			indexed = make(map[recKey]bool, len(sh.index))
			quarantined = make(map[recKey]bool, len(sh.corrupt))
			for k := range sh.index {
				indexed[k] = true
			}
			for k := range sh.corrupt {
				quarantined[k] = true
			}
			sh.mu.Unlock()
			for k := range indexed {
				s, err := w.Get(k.proc, k.index, k.instance)
				if err != nil {
					t.Fatalf("indexed key %+v unreadable: %v", k, err)
				}
				if s.Proc != k.proc || s.CFGIndex != k.index || s.Instance != k.instance {
					t.Fatalf("key %+v served snapshot for %d/%d/%d", k, s.Proc, s.CFGIndex, s.Instance)
				}
			}
			for k := range quarantined {
				if _, err := w.Get(k.proc, k.index, k.instance); !errors.Is(err, storage.ErrCorrupt) {
					t.Fatalf("quarantined key %+v = %v, want ErrCorrupt", k, err)
				}
			}
			return indexed, quarantined
		}
		idx1, cor1 := check(w)
		if err := w.Close(); err != nil {
			t.Fatalf("close after recovery: %v", err)
		}

		// Idempotence: recovery over its own repair output changes nothing.
		w2, err := Open(dir, Options{Shards: 1})
		if err != nil {
			t.Fatalf("second recovery failed: %v", err)
		}
		defer w2.Close()
		idx2, cor2 := check(w2)
		if len(idx1) != len(idx2) || len(cor1) != len(cor2) {
			t.Fatalf("recovery not idempotent: index %d->%d, corrupt %d->%d",
				len(idx1), len(idx2), len(cor1), len(cor2))
		}
		for k := range idx1 {
			if !idx2[k] {
				t.Fatalf("indexed key %+v lost by second recovery", k)
			}
		}
		for k := range cor1 {
			if !cor2[k] {
				t.Fatalf("quarantined key %+v lost by second recovery", k)
			}
		}

		// The repaired log still takes writes.
		clk := vclock.New(1)
		clk[0] = 1
		probe := storage.Snapshot{Proc: 0, CFGIndex: 9999, Instance: 7, Clock: clk, PC: "probe"}
		if err := w2.Save(probe); err != nil && !errors.Is(err, storage.ErrDuplicate) {
			t.Fatalf("save into repaired log: %v", err)
		}
		if _, err := w2.Get(0, 9999, 7); err != nil {
			t.Fatalf("read back probe: %v", err)
		}
	})
}
