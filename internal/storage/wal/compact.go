package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// manifest is the per-shard source of truth for which segment files exist
// and in what order they replay. It is replaced atomically (temp + fsync +
// rename + dir fsync), which makes it the commit point for rotation and
// compaction:
//
//   - A segment file NOT named by the manifest is an orphan from an
//     interrupted compaction or an externally damaged rotation; it is
//     deleted on open.
//   - The manifest is written BEFORE a new segment file is created, so a
//     rotation crash can leave the manifest naming a missing LAST segment
//     (recovered as an empty active segment) but never an acknowledged
//     record inside a file the manifest does not know.
//   - A missing NON-last segment means acknowledged data is gone; open
//     fails rather than silently narrowing the store.
type manifest struct {
	Segments []uint64 `json:"segments"` // replay order; last is active
	Next     uint64   `json:"next"`     // next segment id to allocate
}

// loadManifest returns nil (no error) when the shard has never been
// bootstrapped. The manifest file is CRC-framed like every other record:
// [crc32 u32 BE][JSON].
func (sh *shard) loadManifest() (*manifest, error) {
	data, err := os.ReadFile(sh.manifestPath())
	if errors.Is(err, os.ErrNotExist) {
		// No manifest: any segment files present are foreign damage, not a
		// crash this protocol can produce (the manifest always lands first).
		if sh.hasSegFiles() {
			return nil, fmt.Errorf("segment files exist but manifest is missing")
		}
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("read manifest: %w", err)
	}
	if len(data) < 4 {
		return nil, fmt.Errorf("manifest truncated (%d bytes)", len(data))
	}
	if crc32.ChecksumIEEE(data[4:]) != binary.BigEndian.Uint32(data) {
		return nil, fmt.Errorf("manifest crc mismatch")
	}
	var m manifest
	if err := json.Unmarshal(data[4:], &m); err != nil {
		return nil, fmt.Errorf("manifest undecodable: %w", err)
	}
	return &m, nil
}

// writeManifest replaces the manifest atomically. When consulted is true
// the injector sees the write and rename as separate crash points.
func (sh *shard) writeManifest(m manifest, consulted bool) error {
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("encode manifest: %w", err)
	}
	frame := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(frame, crc32.ChecksumIEEE(body))
	copy(frame[4:], body)

	if consulted {
		if ft := sh.consult(OpManifestWrite, len(frame)); ft.Kill != KillNone {
			return sh.crash(OpManifestWrite, 0)
		}
	}
	tmp := sh.manifestPath() + ".tmp"
	if err := writeFileSync(tmp, frame); err != nil {
		return fmt.Errorf("write manifest: %w", err)
	}
	if consulted {
		if ft := sh.consult(OpManifestRename, 0); ft.Kill == KillBefore {
			return sh.crash(OpManifestRename, 0)
		}
	}
	if err := os.Rename(tmp, sh.manifestPath()); err != nil {
		return fmt.Errorf("publish manifest: %w", err)
	}
	if err := sh.syncShardDir(consulted); err != nil {
		return err
	}
	if consulted {
		if ft := sh.consult(OpManifestRename, 0); ft.Kill == KillAfter {
			// The rename IS durable; only the ack path dies.
			return sh.crash(OpManifestRename, 0)
		}
	}
	return nil
}

func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := fsyncFile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (sh *shard) syncShardDir(consulted bool) error {
	if consulted {
		if ft := sh.consult(OpDirSync, 0); ft.Kill == KillBefore {
			return sh.crash(OpDirSync, 0)
		}
	}
	d, err := os.Open(sh.w.dir)
	if err != nil {
		return fmt.Errorf("open dir: %w", err)
	}
	err = fsyncFile(d)
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("sync dir: %w", err)
	}
	if consulted {
		if ft := sh.consult(OpDirSync, 0); ft.Kill == KillAfter {
			return sh.crash(OpDirSync, 0)
		}
	}
	return nil
}

// hasSegFiles reports whether any segment file of this shard exists.
func (sh *shard) hasSegFiles() bool {
	entries, err := os.ReadDir(sh.w.dir)
	if err != nil {
		return false
	}
	prefix := fmt.Sprintf("s%d-", sh.id)
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), prefix) && strings.HasSuffix(e.Name(), ".seg") {
			return true
		}
	}
	return false
}

// cleanOrphans deletes this shard's files that the manifest does not name:
// segments from interrupted compactions and leftover temp manifests.
func (sh *shard) cleanOrphans(m manifest) error {
	listed := make(map[string]bool, len(m.Segments))
	for _, seg := range m.Segments {
		listed[filepath.Base(sh.segPath(seg))] = true
	}
	entries, err := os.ReadDir(sh.w.dir)
	if err != nil {
		return fmt.Errorf("list dir: %w", err)
	}
	prefix := fmt.Sprintf("s%d-", sh.id)
	tmpName := filepath.Base(sh.manifestPath()) + ".tmp"
	for _, e := range entries {
		name := e.Name()
		isSeg := strings.HasPrefix(name, prefix) && strings.HasSuffix(name, ".seg")
		if (isSeg && !listed[name]) || name == tmpName {
			if err := os.Remove(filepath.Join(sh.w.dir, name)); err != nil {
				return fmt.Errorf("remove orphan %s: %w", name, err)
			}
		}
	}
	return nil
}

// rotateLocked seals the active segment and opens a fresh one: manifest
// first (naming the new segment), then the file. Crash windows:
//
//	before rename  → old manifest, orphan tmp: nothing changed
//	after rename   → manifest names a missing last segment: recovered empty
//	after create   → fully rotated
func (sh *shard) rotateLocked() error {
	newSeg := sh.nextSeg
	m := manifest{Segments: append(append([]uint64(nil), sh.segs...), newSeg), Next: newSeg + 1}
	if err := sh.writeManifest(m, true); err != nil {
		return err
	}
	if ft := sh.consult(OpSegCreate, 0); ft.Kill == KillBefore {
		return sh.crash(OpSegCreate, 0)
	}
	f, err := os.OpenFile(sh.segPath(newSeg), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("create segment %d: %w", newSeg, err)
	}
	if err := sh.syncShardDir(false); err != nil {
		f.Close()
		return err
	}
	sh.sizes[sh.segs[len(sh.segs)-1]] = sh.activeSize
	sh.segs = append(sh.segs, newSeg)
	sh.files[newSeg] = f
	sh.nextSeg = newSeg + 1
	sh.sizes[newSeg] = 0
	sh.activeSize, sh.syncedSize = 0, 0
	sh.w.rotations.Add(1)
	if ft := sh.consult(OpSegCreate, 0); ft.Kill == KillAfter {
		return sh.crash(OpSegCreate, 0)
	}
	if !sh.w.opts.NoAutoCompact && sh.sealedDeadBytesLocked() >= sh.w.opts.CompactMinDeadBytes {
		return sh.compactLocked(false)
	}
	return nil
}

// sealedDeadBytesLocked is the garbage volume in sealed segments: total
// sealed bytes minus the live records and quarantine marks still pointing
// into them.
func (sh *shard) sealedDeadBytesLocked() int64 {
	if len(sh.segs) < 2 {
		return 0
	}
	activeSeg := sh.segs[len(sh.segs)-1]
	var total, live int64
	for _, seg := range sh.segs[:len(sh.segs)-1] {
		total += sh.sizes[seg]
	}
	for _, l := range sh.index {
		if l.seg != activeSeg {
			live += int64(l.size)
		}
	}
	return total - live
}

// compactLocked rewrites ALL sealed segments into one fresh segment
// holding only live records and quarantine markers, then atomically
// retires the old files. Compacting every sealed segment at once is what
// makes dropping tombstones safe: a tombstone's only job is to supersede
// older puts during replay, and after full compaction no superseded put
// survives anywhere (records in the active segment replay later anyway).
// Quarantine marks whose evidence lives in sealed segments are preserved
// as marker records so a reopen does not resurrect the key as missing
// rather than corrupt.
//
// Crash windows: the compacted segment is written and fsynced BEFORE the
// manifest rename, so a crash beforehand leaves it an orphan (deleted on
// open) and the old segments authoritative; a crash after the rename but
// before the retirements leaves the old files orphans (deleted on open).
func (sh *shard) compactLocked(force bool) error {
	if len(sh.segs) < 2 {
		return nil // nothing sealed
	}
	if !force && sh.sealedDeadBytesLocked() <= 0 {
		return nil
	}
	activeSeg := sh.segs[len(sh.segs)-1]
	newSeg := sh.nextSeg

	// Gather live records in sealed segments, in deterministic key order.
	type liveRec struct {
		key recKey
		l   loc
	}
	var lives []liveRec
	for k, l := range sh.index {
		if l.seg != activeSeg {
			lives = append(lives, liveRec{k, l})
		}
	}
	sortRecs := func(a, b recKey) bool {
		if a.proc != b.proc {
			return a.proc < b.proc
		}
		if a.index != b.index {
			return a.index < b.index
		}
		return a.instance < b.instance
	}
	sort.Slice(lives, func(i, j int) bool { return sortRecs(lives[i].key, lives[j].key) })
	var marks []recKey
	for k := range sh.corrupt {
		marks = append(marks, k)
	}
	sort.Slice(marks, func(i, j int) bool { return sortRecs(marks[i], marks[j]) })

	// Write the compacted segment: copy live frames verbatim (their CRC
	// travels with them — compaction cannot launder corruption), then
	// re-emit quarantine marks.
	var (
		buf     []byte
		newLocs = make(map[recKey]loc, len(lives))
	)
	for _, lr := range lives {
		f := sh.files[lr.l.seg]
		frame := make([]byte, lr.l.size)
		if _, err := f.ReadAt(frame, lr.l.off); err != nil {
			return fmt.Errorf("compact read %s: %w", lr.key, err)
		}
		if ev, _, ok := parseRecordAt(frame, 0); !ok || ev.key != lr.key {
			// Damaged since it was indexed (an injected flip): quarantine
			// instead of copying garbage forward as a "valid" record.
			sh.corrupt[lr.key] = "crc mismatch at compaction"
			delete(sh.index, lr.key)
			marks = append(marks, lr.key)
			continue
		}
		newLocs[lr.key] = loc{seg: newSeg, off: int64(len(buf)), size: len(frame)}
		buf = append(buf, frame...)
	}
	for _, k := range marks {
		buf = append(buf, encodeFrame(kindMark, k, []byte(sh.corrupt[k]))...)
	}

	if ft := sh.consult(OpSegCreate, len(buf)); ft.Kill != KillNone {
		return sh.crash(OpSegCreate, 0)
	}
	if err := writeFileSync(sh.segPath(newSeg), buf); err != nil {
		return fmt.Errorf("write compacted segment %d: %w", newSeg, err)
	}
	if err := sh.syncShardDir(false); err != nil {
		return err
	}

	// Commit point: the manifest now names [compacted, active].
	m := manifest{Segments: []uint64{newSeg, activeSeg}, Next: newSeg + 1}
	if err := sh.writeManifest(m, true); err != nil {
		return err
	}

	// Swap in-memory state, then retire the old files.
	retired := append([]uint64(nil), sh.segs[:len(sh.segs)-1]...)
	f, err := os.OpenFile(sh.segPath(newSeg), os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("reopen compacted segment %d: %w", newSeg, err)
	}
	sh.segs = []uint64{newSeg, activeSeg}
	sh.files[newSeg] = f
	sh.sizes[newSeg] = int64(len(buf))
	sh.nextSeg = newSeg + 1
	for k, l := range newLocs {
		sh.index[k] = l
	}
	sh.w.compactions.Add(1)

	if ft := sh.consult(OpRetire, 0); ft.Kill == KillBefore {
		return sh.crash(OpRetire, 0)
	}
	for _, seg := range retired {
		if old := sh.files[seg]; old != nil {
			old.Close()
		}
		delete(sh.files, seg)
		delete(sh.sizes, seg)
		if err := os.Remove(sh.segPath(seg)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("retire segment %d: %w", seg, err)
		}
	}
	if err := sh.syncShardDir(false); err != nil {
		return err
	}
	if ft := sh.consult(OpRetire, 0); ft.Kill == KillAfter {
		return sh.crash(OpRetire, 0)
	}
	return nil
}
