package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/storage"
	"repro/internal/vclock"
)

func snap(proc, index, instance int) storage.Snapshot {
	clock := vclock.New(proc + 1)
	clock[proc] = uint64(instance + 1)
	return storage.Snapshot{
		Proc: proc, CFGIndex: index, Instance: instance,
		Clock: clock,
		Vars:  map[string]int{"x": proc*1000 + index*10 + instance},
		PC:    fmt.Sprintf("s%d_%d_%d", proc, index, instance),
	}
}

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	w, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

func TestRoundTrip(t *testing.T) {
	w := mustOpen(t, t.TempDir(), Options{Shards: 4})
	for p := 0; p < 3; p++ {
		for i := 0; i < 4; i++ {
			for k := 0; k < 2; k++ {
				if err := w.Save(snap(p, i, k)); err != nil {
					t.Fatalf("Save(%d,%d,%d): %v", p, i, k, err)
				}
			}
		}
	}
	s, err := w.Get(1, 2, 1)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if s.Vars["x"] != 1021 || s.PC != "s1_2_1" {
		t.Fatalf("Get returned wrong snapshot: %+v", s)
	}
	if s, err = w.Latest(2, 3); err != nil || s.Instance != 1 {
		t.Fatalf("Latest = %+v, %v; want instance 1", s, err)
	}
	list, err := w.List(1)
	if err != nil || len(list) != 8 {
		t.Fatalf("List(1) = %d snaps, %v; want 8", len(list), err)
	}
	for i := 1; i < len(list); i++ {
		a, b := list[i-1], list[i]
		if a.CFGIndex > b.CFGIndex || (a.CFGIndex == b.CFGIndex && a.Instance >= b.Instance) {
			t.Fatalf("List order violated at %d: %+v then %+v", i, a, b)
		}
	}
	idx, err := w.Indexes(3)
	if err != nil || len(idx) != 4 {
		t.Fatalf("Indexes(3) = %v, %v; want 4 indexes", idx, err)
	}
	if _, err := w.Get(9, 9, 9); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("Get missing = %v, want ErrNotFound", err)
	}
	if err := w.Save(snap(1, 2, 1)); !errors.Is(err, storage.ErrDuplicate) {
		t.Fatalf("duplicate Save = %v, want ErrDuplicate", err)
	}
	if err := w.Delete(1, 2, 1); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := w.Get(1, 2, 1); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("Get after Delete = %v, want ErrNotFound", err)
	}
	if err := w.Delete(1, 2, 1); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("double Delete = %v, want ErrNotFound", err)
	}
	// A deleted key can be saved again.
	if err := w.Save(snap(1, 2, 1)); err != nil {
		t.Fatalf("re-Save after Delete: %v", err)
	}
}

func TestReopenRecoversEverything(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{Shards: 4})
	const n = 200
	for i := 0; i < n; i++ {
		if err := w.Save(snap(i%5, i/5, 0)); err != nil {
			t.Fatalf("Save %d: %v", i, err)
		}
	}
	if err := w.Delete(0, 0, 0); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	w2 := mustOpen(t, dir, Options{Shards: 4})
	if _, err := w2.Get(0, 0, 0); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("deleted key resurrected after reopen: %v", err)
	}
	for i := 1; i < n; i++ {
		p, idx := i%5, i/5
		s, err := w2.Get(p, idx, 0)
		if err != nil {
			t.Fatalf("Get(%d,%d) after reopen: %v", p, idx, err)
		}
		if s.Vars["x"] != p*1000+idx*10 {
			t.Fatalf("recovered snapshot differs: %+v", s)
		}
	}
	if got := w2.Stats().Recovered; got < n {
		t.Fatalf("Stats.Recovered = %d, want >= %d", got, n)
	}
}

func TestGroupCommitBatches(t *testing.T) {
	w := mustOpen(t, t.TempDir(), Options{Shards: 1, MaxBatch: 64})
	const n = 256
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w.Save(snap(0, i, 0))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("Save %d: %v", i, err)
		}
	}
	st := w.Stats()
	if st.Saves != n {
		t.Fatalf("Saves = %d, want %d", st.Saves, n)
	}
	if st.Batches >= n {
		t.Fatalf("no batching: %d batches for %d saves", st.Batches, n)
	}
	t.Logf("amortization: %d saves in %d group commits", st.Saves, st.Batches)
}

// TestTornTailTruncated simulates a crash mid-append by chopping bytes off
// a segment file out-of-band: reopen must truncate the incomplete trailing
// frame and keep every record before it.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{Shards: 1})
	for i := 0; i < 10; i++ {
		if err := w.Save(snap(0, i, 0)); err != nil {
			t.Fatalf("Save: %v", err)
		}
	}
	w.Close()

	path := filepath.Join(dir, "s0-0.seg")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut into the last frame: drop 5 trailing bytes.
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	w2 := mustOpen(t, dir, Options{Shards: 1})
	if w2.Stats().TruncatedBytes == 0 {
		t.Fatal("no torn tail truncated")
	}
	for i := 0; i < 9; i++ {
		if _, err := w2.Get(0, i, 0); err != nil {
			t.Fatalf("Get(0,%d) after torn tail: %v", i, err)
		}
	}
	// The torn record is gone — as if the append never completed.
	if _, err := w2.Get(0, 9, 0); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("torn record served: %v", err)
	}
	// And its key is writable again.
	if err := w2.Save(snap(0, 9, 0)); err != nil {
		t.Fatalf("re-Save torn key: %v", err)
	}
}

// TestInteriorCorruptionQuarantined flips a byte inside a mid-log record's
// body: reopen must quarantine exactly that key as ErrCorrupt — not abort
// recovery, not serve the damaged bytes, not drop the key silently.
func TestInteriorCorruptionQuarantined(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{Shards: 1})
	for i := 0; i < 10; i++ {
		if err := w.Save(snap(0, i, 0)); err != nil {
			t.Fatalf("Save: %v", err)
		}
	}
	var victim loc
	sh := w.shards[0]
	sh.mu.Lock()
	victim = sh.index[recKey{0, 4, 0}]
	sh.mu.Unlock()
	w.Close()

	path := filepath.Join(dir, "s0-0.seg")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the victim's JSON body (past the frame+payload heads).
	data[victim.off+frameHeader+payloadHead+2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2 := mustOpen(t, dir, Options{Shards: 1})
	if _, err := w2.Get(0, 4, 0); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("damaged record Get = %v, want ErrCorrupt", err)
	}
	if _, err := w2.Latest(0, 4); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("damaged record Latest = %v, want ErrCorrupt", err)
	}
	if _, err := w2.List(0); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("List over damaged proc = %v, want ErrCorrupt (strict)", err)
	}
	for i := 0; i < 10; i++ {
		if i == 4 {
			continue
		}
		if _, err := w2.Get(0, i, 0); err != nil {
			t.Fatalf("healthy neighbor Get(0,%d): %v", i, err)
		}
	}
	// Scrub quarantines it durably; the key becomes savable again.
	rep, err := w2.Scrub()
	if err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0].CFGIndex != 4 {
		t.Fatalf("Scrub report = %+v, want exactly (0,4,0)", rep)
	}
	if _, err := w2.Get(0, 4, 0); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("Get after scrub = %v, want ErrNotFound", err)
	}
	if err := w2.Save(snap(0, 4, 0)); err != nil {
		t.Fatalf("re-Save after scrub: %v", err)
	}
	w2.Close()

	// The scrub is durable: the mark must not resurrect on reopen.
	w3 := mustOpen(t, dir, Options{Shards: 1})
	if s, err := w3.Get(0, 4, 0); err != nil || s.Vars["x"] != 40 {
		t.Fatalf("regenerated record after reopen = %+v, %v", s, err)
	}
}

// TestQuarantineMarkSurvivesReopen: a key quarantined at read time (rot
// detected) must still read ErrCorrupt after a reopen — recovery rebuilds
// the mark from the damaged bytes still in the log.
func TestQuarantineMarkSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{Shards: 1})
	for i := 0; i < 3; i++ {
		if err := w.Save(snap(0, i, 0)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	w2 := mustOpen(t, dir, Options{Shards: 1})
	// Damage index 1's body on disk while the store is open.
	sh := w2.shards[0]
	sh.mu.Lock()
	l := sh.index[recKey{0, 1, 0}]
	f := sh.files[l.seg]
	if _, err := f.WriteAt([]byte{0xFF}, l.off+frameHeader+payloadHead+2); err != nil {
		sh.mu.Unlock()
		t.Fatal(err)
	}
	sh.mu.Unlock()
	if _, err := w2.Get(0, 1, 0); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("Get rotted = %v, want ErrCorrupt", err)
	}
	w2.Close()
	w3 := mustOpen(t, dir, Options{Shards: 1})
	if _, err := w3.Get(0, 1, 0); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("rot mark lost across reopen: %v", err)
	}
}

func TestRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotations; compaction auto-triggers on dead bytes.
	w := mustOpen(t, dir, Options{Shards: 2, MaxSegmentBytes: 4 << 10, CompactMinDeadBytes: 2 << 10})
	const n = 300
	for i := 0; i < n; i++ {
		if err := w.Save(snap(i%3, i/3, 0)); err != nil {
			t.Fatalf("Save %d: %v", i, err)
		}
	}
	// Delete two thirds to create garbage.
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			continue
		}
		if err := w.Delete(i%3, i/3, 0); err != nil {
			t.Fatalf("Delete %d: %v", i, err)
		}
	}
	if err := w.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	st := w.Stats()
	if st.Rotations == 0 {
		t.Fatal("tiny segments never rotated")
	}
	if st.Compactions == 0 {
		t.Fatal("compaction never ran")
	}
	w.Close()

	w2 := mustOpen(t, dir, Options{Shards: 2})
	for i := 0; i < n; i++ {
		p, idx := i%3, i/3
		_, err := w2.Get(p, idx, 0)
		if i%3 == 0 {
			if err != nil {
				t.Fatalf("live key (%d,%d) lost after compaction+reopen: %v", p, idx, err)
			}
		} else if !errors.Is(err, storage.ErrNotFound) {
			t.Fatalf("deleted key (%d,%d) resurrected: %v", p, idx, err)
		}
	}
}

// TestOrphanSegmentsDeleted: segment files the manifest does not name
// (an interrupted compaction's output) are removed on open.
func TestOrphanSegmentsDeleted(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{Shards: 1})
	if err := w.Save(snap(0, 0, 0)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	orphan := filepath.Join(dir, "s0-77.seg")
	if err := os.WriteFile(orphan, encodeFrame(kindPut, recKey{9, 9, 9}, []byte(`{"proc":9,"cfgIndex":9,"instance":9}`)), 0o644); err != nil {
		t.Fatal(err)
	}
	w2 := mustOpen(t, dir, Options{Shards: 1})
	if _, err := os.Stat(orphan); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("orphan segment survived open: %v", err)
	}
	if _, err := w2.Get(9, 9, 9); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("orphan record leaked into the index: %v", err)
	}
}

// TestManifestNamesMissingLastSegment: a rotation crash window — manifest
// renamed, segment file never created — recovers as an empty active
// segment.
func TestManifestNamesMissingLastSegment(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{Shards: 1})
	if err := w.Save(snap(0, 0, 0)); err != nil {
		t.Fatal(err)
	}
	sh := w.shards[0]
	sh.mu.Lock()
	m := manifest{Segments: append(append([]uint64(nil), sh.segs...), sh.nextSeg), Next: sh.nextSeg + 1}
	err := sh.writeManifest(m, false)
	sh.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	w.Close()

	w2 := mustOpen(t, dir, Options{Shards: 1})
	if _, err := w2.Get(0, 0, 0); err != nil {
		t.Fatalf("record lost across rotation crash window: %v", err)
	}
	if err := w2.Save(snap(0, 1, 0)); err != nil {
		t.Fatalf("Save into recovered empty active: %v", err)
	}
}

// TestMissingInteriorSegmentFatal: acknowledged data vanishing wholesale
// (a non-last manifest segment missing) must fail open loudly.
func TestMissingInteriorSegmentFatal(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{Shards: 1, MaxSegmentBytes: 1 << 10})
	for i := 0; i < 50; i++ {
		if err := w.Save(snap(0, i, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if w.Stats().Rotations == 0 {
		t.Fatal("test needs at least one rotation")
	}
	w.Close()
	if err := os.Remove(filepath.Join(dir, "s0-0.seg")); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Shards: 1}); err == nil {
		t.Fatal("Open succeeded with an interior segment missing")
	}
}

// TestFsyncGatePoisonsStore: a real fsync failure must fail the Save with
// storage.ErrFsync (permanent, NOT ErrTransient) and poison the store
// until reopen — retrying the fsync could silently "succeed" without the
// data on disk.
func TestFsyncGatePoisonsStore(t *testing.T) {
	orig := fsyncFile
	defer func() { fsyncFile = orig }()

	w := mustOpen(t, t.TempDir(), Options{Shards: 1})
	if err := w.Save(snap(0, 0, 0)); err != nil {
		t.Fatal(err)
	}
	fail := true
	fsyncFile = func(f *os.File) error {
		if fail {
			return errors.New("injected EIO")
		}
		return orig(f)
	}
	err := w.Save(snap(0, 1, 0))
	if !errors.Is(err, storage.ErrFsync) {
		t.Fatalf("Save under failing fsync = %v, want ErrFsync", err)
	}
	if errors.Is(err, storage.ErrTransient) {
		t.Fatal("ErrFsync must not be transient: a retried fsync can lie")
	}
	fail = false
	// The store is poisoned even though fsync "works" again.
	if err := w.Save(snap(0, 2, 0)); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Save after fsync failure = %v, want ErrCrashed", err)
	}
	if !w.Killed() {
		t.Fatal("store not marked killed after fsync failure")
	}
}

func TestClosedStore(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{})
	if err := w.Save(snap(0, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Save(snap(0, 1, 0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Save after Close = %v, want ErrClosed", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}
