package wal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"

	"repro/internal/storage"
)

// Record framing. Every record in a segment is one frame:
//
//	magic  u32 BE  — frame marker, lets recovery resynchronize past damage
//	length u32 BE  — payload byte count
//	crc    u32 BE  — CRC32 (IEEE) over the payload
//	payload        — kind u8 | proc i32 BE | index i32 BE | instance i32 BE | body
//
// The key fields live inside the CRC-covered payload, so a record is either
// served whole and verified or not served at all: recovery can never
// attribute a damaged body to the wrong checkpoint. The body is the
// JSON-encoded storage.Snapshot for puts, empty for tombstones, and a
// human-readable reason for quarantine markers.
const (
	frameMagic  = 0x57414C31 // "WAL1"
	frameHeader = 12         // magic + length + crc
	payloadHead = 13         // kind + 3 × i32 key
	maxPayload  = 1 << 28    // sanity bound on the length field
)

// Record kinds.
const (
	kindPut  = 1 // a snapshot
	kindTomb = 2 // a durable delete of one key
	kindMark = 3 // a quarantine marker: key is corrupt, body carries why
	// kindCorruptRegion is a scan-synthesized pseudo-kind for a damaged
	// byte range; it never appears on disk.
	kindCorruptRegion = 0xFF
)

type recKey struct{ proc, index, instance int }

func (k recKey) String() string {
	return fmt.Sprintf("proc=%d index=%d instance=%d", k.proc, k.index, k.instance)
}

// loc names one frame inside a shard's segment chain.
type loc struct {
	seg  uint64
	off  int64
	size int // full frame size, header included
}

// encodeFrame builds one complete frame for (kind, key, body).
func encodeFrame(kind byte, k recKey, body []byte) []byte {
	payload := make([]byte, payloadHead+len(body))
	payload[0] = kind
	binary.BigEndian.PutUint32(payload[1:], uint32(int32(k.proc)))
	binary.BigEndian.PutUint32(payload[5:], uint32(int32(k.index)))
	binary.BigEndian.PutUint32(payload[9:], uint32(int32(k.instance)))
	copy(payload[payloadHead:], body)

	frame := make([]byte, frameHeader+len(payload))
	binary.BigEndian.PutUint32(frame[0:], frameMagic)
	binary.BigEndian.PutUint32(frame[4:], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[8:], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeader:], payload)
	return frame
}

// parsePayload splits a CRC-verified payload into its parts.
func parsePayload(payload []byte) (kind byte, k recKey, body []byte, ok bool) {
	if len(payload) < payloadHead {
		return 0, recKey{}, nil, false
	}
	kind = payload[0]
	if kind != kindPut && kind != kindTomb && kind != kindMark {
		return 0, recKey{}, nil, false
	}
	k = recKey{
		proc:     int(int32(binary.BigEndian.Uint32(payload[1:]))),
		index:    int(int32(binary.BigEndian.Uint32(payload[5:]))),
		instance: int(int32(binary.BigEndian.Uint32(payload[9:]))),
	}
	return kind, k, payload[payloadHead:], true
}

// decodeSnapshot unmarshals a put body, cross-checking the embedded key
// against the frame key so an index bug can never alias snapshots.
func decodeSnapshot(k recKey, body []byte) (storage.Snapshot, error) {
	var s storage.Snapshot
	if err := json.Unmarshal(body, &s); err != nil {
		return storage.Snapshot{}, fmt.Errorf("%w: %s: undecodable body: %v", storage.ErrCorrupt, k, err)
	}
	if s.Proc != k.proc || s.CFGIndex != k.index || s.Instance != k.instance {
		return storage.Snapshot{}, fmt.Errorf("%w: %s: body names %d/%d/%d", storage.ErrCorrupt,
			k, s.Proc, s.CFGIndex, s.Instance)
	}
	return s, nil
}

// recEvent is one scan observation: a valid record, or a damaged region.
type recEvent struct {
	off    int64
	size   int
	kind   byte // kindPut / kindTomb / kindMark / kindCorruptRegion
	key    recKey
	keyOK  bool   // corrupt regions: the header still named a plausible key
	reason string // corrupt regions and markers: why
}

// parseRecordAt fully validates the frame at off: magic, sane length,
// complete bytes, CRC, and payload shape.
func parseRecordAt(data []byte, off int) (recEvent, int, bool) {
	if off+frameHeader > len(data) {
		return recEvent{}, 0, false
	}
	if binary.BigEndian.Uint32(data[off:]) != frameMagic {
		return recEvent{}, 0, false
	}
	length := int(binary.BigEndian.Uint32(data[off+4:]))
	if length < payloadHead || length > maxPayload || off+frameHeader+length > len(data) {
		return recEvent{}, 0, false
	}
	payload := data[off+frameHeader : off+frameHeader+length]
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(data[off+8:]) {
		return recEvent{}, 0, false
	}
	kind, key, body, ok := parsePayload(payload)
	if !ok {
		return recEvent{}, 0, false
	}
	ev := recEvent{off: int64(off), size: frameHeader + length, kind: kind, key: key, keyOK: true}
	if kind == kindMark {
		ev.reason = string(body)
	}
	return ev, frameHeader + length, true
}

// resync scans forward for the next offset holding a fully valid record.
func resync(data []byte, from int) int {
	for i := from; i+frameHeader <= len(data); i++ {
		if binary.BigEndian.Uint32(data[i:]) != frameMagic {
			continue
		}
		if _, _, ok := parseRecordAt(data, i); ok {
			return i
		}
	}
	return -1
}

// incompleteFrameAt reports whether the bytes at off look like a frame cut
// short by a crash (a torn tail) rather than a complete-but-damaged one:
// the header itself is truncated, or the stored length runs past EOF.
// Bit rot preserves the byte count; torn writes do not — this is what lets
// recovery truncate unacknowledged torn tails while quarantining (never
// silently dropping) complete records that fail their CRC.
func incompleteFrameAt(data []byte, off int) bool {
	if off+frameHeader > len(data) {
		return true
	}
	if binary.BigEndian.Uint32(data[off:]) != frameMagic {
		return false
	}
	length := int(binary.BigEndian.Uint32(data[off+4:]))
	if length > maxPayload {
		return false // length field itself is rot, not a cut
	}
	return off+frameHeader+length > len(data)
}

// corruptEvent describes the damaged region [start, end). When the frame
// header at start still parses, the event carries the key it named so the
// quarantine can be attributed; otherwise the region is anonymous.
func corruptEvent(data []byte, start, end int) recEvent {
	ev := recEvent{off: int64(start), size: end - start, kind: kindCorruptRegion, reason: "unrecognizable bytes"}
	if start+frameHeader+payloadHead <= len(data) && binary.BigEndian.Uint32(data[start:]) == frameMagic {
		length := int(binary.BigEndian.Uint32(data[start+4:]))
		if length >= payloadHead && length <= maxPayload {
			if _, key, _, ok := parsePayload(data[start+frameHeader : min(start+frameHeader+length, len(data))]); ok {
				ev.key, ev.keyOK, ev.reason = key, true, "crc mismatch"
			}
		}
	}
	return ev
}

// scanSegment walks one segment's bytes, yielding valid records and
// damaged regions in log order. tornStart >= 0 reports a trailing
// INCOMPLETE frame (a torn tail): the caller truncates it when the segment
// is the shard's active tail, and quarantines it otherwise (a sealed
// segment was fsynced whole, so a short tail there is real damage, not an
// interrupted append).
func scanSegment(data []byte) (events []recEvent, tornStart int64) {
	off := 0
	for off < len(data) {
		if ev, n, ok := parseRecordAt(data, off); ok {
			events = append(events, ev)
			off += n
			continue
		}
		next := resync(data, off+1)
		if next < 0 {
			if incompleteFrameAt(data, off) {
				return events, int64(off)
			}
			events = append(events, corruptEvent(data, off, len(data)))
			return events, -1
		}
		events = append(events, corruptEvent(data, off, next))
		off = next
	}
	return events, -1
}
