package wal

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/storage"
)

// scriptInjector fires one scripted fault at a given per-shard consult
// sequence number, recording whether it triggered.
type scriptInjector struct {
	mu    sync.Mutex
	op    Op
	seq   uint64
	fault Fault
	anyOp bool // match seq regardless of op
	fired bool
}

func (si *scriptInjector) Decide(op Op, shard int, seq uint64, size int) Fault {
	si.mu.Lock()
	defer si.mu.Unlock()
	if si.fired {
		return Fault{}
	}
	if (si.anyOp || op == si.op) && seq >= si.seq {
		si.fired = true
		return si.fault
	}
	return Fault{}
}

// TestCrashAtEveryConsultPoint walks the consult sequence: for step N it
// runs a fixed workload with a kill injected at the N-th consult, then
// reopens and checks the fundamental invariant — every Save that returned
// nil is recovered intact, every Save that did not is either absent or
// fully intact (never torn, never wrong).
func TestCrashAtEveryConsultPoint(t *testing.T) {
	for _, kill := range []Kill{KillBefore, KillAfter} {
		for _, keep := range []int{0, 7} {
			for step := uint64(0); step < 40; step++ {
				t.Run(fmt.Sprintf("kill%d_keep%d_step%d", kill, keep, step), func(t *testing.T) {
					si := &scriptInjector{anyOp: true, seq: step, fault: Fault{Kill: kill, Keep: keep}}
					runCrashWorkload(t, si)
				})
			}
		}
	}
}

// TestCrashAtRotationAndCompaction targets the manifest protocol windows
// specifically: kills at segment creation, manifest write/rename, and
// retirement, under segment sizes small enough to force both rotation and
// compaction inside the workload.
func TestCrashAtRotationAndCompaction(t *testing.T) {
	for _, op := range []Op{OpSegCreate, OpManifestWrite, OpManifestRename, OpRetire, OpDirSync} {
		for _, kill := range []Kill{KillBefore, KillAfter} {
			for step := uint64(0); step < 6; step++ {
				si := &scriptInjector{op: op, seq: step, fault: Fault{Kill: kill}}
				runCrashWorkload(t, si)
			}
		}
	}
}

// runCrashWorkload drives saves and deletes into an injected store until
// it dies (or the workload completes), then reopens WITHOUT an injector
// and verifies the invariant against the recorded acks.
func runCrashWorkload(t *testing.T, si *scriptInjector) {
	t.Helper()
	dir := t.TempDir()
	opts := Options{Shards: 1, MaxSegmentBytes: 2 << 10, CompactMinDeadBytes: 1 << 10, Injector: si}
	w, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}

	acked := map[recKey]bool{}        // Save returned nil
	deleted := map[recKey]bool{}      // Delete returned nil
	delAttempted := map[recKey]bool{} // Delete issued — acked or not, the
	// tombstone may have been fsynced before the crash killed the ack
	const n = 120
	for i := 0; i < n; i++ {
		k := recKey{i % 2, i / 2, 0}
		if err := w.Save(snap(k.proc, k.index, k.instance)); err == nil {
			acked[k] = true
		} else if !errors.Is(err, ErrCrashed) {
			t.Fatalf("Save(%v) failed with non-crash error: %v", k, err)
		}
		if i%5 == 4 {
			dk := recKey{(i - 2) % 2, (i - 2) / 2, 0}
			err := w.Delete(dk.proc, dk.index, dk.instance)
			if err == nil {
				delete(acked, dk)
				deleted[dk] = true
				delAttempted[dk] = true
			} else if errors.Is(err, ErrCrashed) {
				delAttempted[dk] = true
			} else if !errors.Is(err, storage.ErrNotFound) {
				t.Fatalf("Delete(%v) failed oddly: %v", dk, err)
			}
		}
	}
	crashed := w.Killed()
	w.Close()

	w2, err := Open(dir, Options{Shards: 1})
	if err != nil {
		t.Fatalf("reopen after crash (fired=%v crashed=%v): %v", si.fired, crashed, err)
	}
	defer w2.Close()

	for k := range acked {
		s, err := w2.Get(k.proc, k.index, k.instance)
		if err != nil {
			if delAttempted[k] && errors.Is(err, storage.ErrNotFound) {
				// An unacked Delete's tombstone beat the crash to disk.
				continue
			}
			t.Fatalf("ACKED save %v lost after crash+reopen (injector fired=%v): %v", k, si.fired, err)
		}
		if want := k.proc*1000 + k.index*10 + k.instance; s.Vars["x"] != want {
			t.Fatalf("acked save %v recovered with wrong body: %+v", k, s)
		}
	}
	for k := range deleted {
		if _, err := w2.Get(k.proc, k.index, k.instance); !errors.Is(err, storage.ErrNotFound) {
			t.Fatalf("ACKED delete %v resurrected after crash+reopen: %v", k, err)
		}
	}
	// Unacked keys: absent is fine (the crash beat the fsync); present must
	// be fully intact (the fsync beat the crash) — never torn, never wrong.
	for i := 0; i < n; i++ {
		k := recKey{i % 2, i / 2, 0}
		if acked[k] || deleted[k] {
			continue
		}
		s, err := w2.Get(k.proc, k.index, k.instance)
		if err != nil {
			if errors.Is(err, storage.ErrNotFound) || errors.Is(err, storage.ErrCorrupt) {
				continue
			}
			t.Fatalf("unacked key %v read failed oddly: %v", k, err)
		}
		if want := k.proc*1000 + k.index*10 + k.instance; s.Vars["x"] != want {
			t.Fatalf("unacked key %v served torn/wrong bytes: %+v", k, s)
		}
	}
}

// TestInjectedFlipServedAsCorrupt: a bit flip on an acknowledged record's
// body must surface as ErrCorrupt on read — before AND after a reopen —
// and never as the damaged bytes or a silent miss.
func TestInjectedFlipServedAsCorrupt(t *testing.T) {
	for step := uint64(0); step < 10; step++ {
		si := &scriptInjector{op: OpAppend, seq: step, fault: Fault{Flip: true, FlipAt: 3}}
		dir := t.TempDir()
		w, err := Open(dir, Options{Shards: 1, Injector: si})
		if err != nil {
			t.Fatal(err)
		}
		var ackedKeys []recKey
		for i := 0; i < 10; i++ {
			k := recKey{0, i, 0}
			if err := w.Save(snap(0, i, 0)); err != nil {
				t.Fatalf("Save under flip injection must still ack: %v", err)
			}
			ackedKeys = append(ackedKeys, k)
		}
		if !si.fired {
			t.Fatal("flip never fired")
		}
		countCorrupt := func(w *Store) int {
			n := 0
			for _, k := range ackedKeys {
				s, err := w.Get(k.proc, k.index, k.instance)
				switch {
				case err == nil:
					if want := k.index * 10; s.Vars["x"] != want {
						t.Fatalf("flip served as valid data: %+v", s)
					}
				case errors.Is(err, storage.ErrCorrupt):
					n++
				default:
					t.Fatalf("Get(%v) = %v, want nil or ErrCorrupt", k, err)
				}
			}
			return n
		}
		live := countCorrupt(w)
		if live != 1 {
			t.Fatalf("step %d: %d corrupt keys live, want exactly 1", step, live)
		}
		w.Close()
		w2, err := Open(dir, Options{Shards: 1})
		if err != nil {
			t.Fatalf("reopen over flipped record: %v", err)
		}
		if re := countCorrupt(w2); re != 1 {
			t.Fatalf("step %d: %d corrupt keys after reopen, want exactly 1", step, re)
		}
		w2.Close()
	}
}

// TestTornBatchPartialKeep: a crash that lets only part of an unsynced
// batch land produces a torn tail; reopen truncates it and recovers
// everything fsynced before.
func TestTornBatchPartialKeep(t *testing.T) {
	for keep := 1; keep < 60; keep += 7 {
		si := &scriptInjector{op: OpSync, seq: 3, fault: Fault{Kill: KillBefore, Keep: keep}}
		runCrashWorkload(t, si)
	}
}
