package wal

// Deterministic crash-point injection seam. The store consults its
// Injector (when configured) immediately before and after every durability
// side effect: appends, fsyncs, directory syncs, segment creation,
// manifest writes, manifest renames, and segment retirement. The injector
// answers with a Fault that can tear the pending bytes, flip a byte that
// was already acknowledged durable, or kill the store before or after the
// effect lands — which is how the walchaos soak drives the log through
// every crash window without forking processes.
//
// Consults happen under the owning shard's mutex, so a deterministic
// injector (internal/chaos.WALInjector) sees one well-ordered stream of
// decisions per shard regardless of goroutine scheduling.

// Op identifies the durability side effect being attempted.
type Op int

const (
	// OpAppend: a group-committed batch is about to be written to the
	// active segment. size is the batch byte count; Keep tears the write
	// after Keep bytes.
	OpAppend Op = iota
	// OpSync: fsync of the active segment after an append.
	OpSync
	// OpDirSync: fsync of the shard directory after create/rename/retire.
	OpDirSync
	// OpSegCreate: a fresh active segment file is about to be created.
	OpSegCreate
	// OpManifestWrite: the temp manifest is about to be written+fsynced.
	OpManifestWrite
	// OpManifestRename: the temp manifest is about to be renamed over the
	// live one — the commit point of rotation/compaction.
	OpManifestRename
	// OpRetire: obsolete segment files are about to be deleted after a
	// successful compaction.
	OpRetire
)

var opNames = map[Op]string{
	OpAppend:         "append",
	OpSync:           "sync",
	OpDirSync:        "dirsync",
	OpSegCreate:      "segcreate",
	OpManifestWrite:  "manifestwrite",
	OpManifestRename: "manifestrename",
	OpRetire:         "retire",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return "op?"
}

// Kill says when, relative to the side effect, the simulated crash fires.
type Kill int

const (
	KillNone   Kill = iota
	KillBefore      // crash before the effect: none of its bytes land
	KillAfter       // crash after the effect: bytes landed, ack never sent
)

// Fault is the injector's decision for one consult. The zero value is
// "no fault".
type Fault struct {
	Kill Kill
	// Keep (OpAppend + KillBefore/KillAfter only): how many bytes of the
	// batch land anyway — a torn write. Unsynced bytes beyond the last
	// fsync are additionally discarded by the kill damage model.
	Keep int
	// Flip (OpAppend only): flip one byte of the batch at offset FlipAt
	// before it is written — silent media corruption of a record that
	// will still be acknowledged.
	Flip   bool
	FlipAt int
}

// Injector decides faults. seq is a per-shard monotone consult counter;
// size is the byte count at stake (0 when not meaningful for the op).
type Injector interface {
	Decide(op Op, shard int, seq uint64, size int) Fault
}
