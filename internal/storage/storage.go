// Package storage provides the stable-storage abstraction that
// checkpointing protocols write checkpoints to and restart reads them from.
// Two implementations are provided: a concurrency-safe in-memory store used
// by the simulator and tests, and a file-backed store with CRC integrity
// verification for durable use. Both index checkpoints by (process,
// CFG checkpoint index, instance) exactly as the paper's Definition 2.3
// requires so that the straight cut R_i — the latest i-th checkpoint of
// every process — can be recovered after a failure.
package storage

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/vclock"
)

// Snapshot is the saved state of one process at one checkpoint.
type Snapshot struct {
	Proc     int            `json:"proc"`
	CFGIndex int            `json:"cfgIndex"` // the i of C_{p,i}
	Instance int            `json:"instance"` // invocation count of the statement
	Clock    vclock.VC      `json:"clock"`    // vector clock at checkpoint time
	Vars     map[string]int `json:"vars"`     // process variable state
	PC       string         `json:"pc"`       // resume label (statement id)
	// SendSeqs / RecvSeqs record per-peer channel sequence numbers so that a
	// restarted process resumes FIFO numbering correctly.
	SendSeqs []int `json:"sendSeqs"`
	RecvSeqs []int `json:"recvSeqs"`
	// Instances records the per-index checkpoint instance counters at
	// checkpoint time, so a restarted process numbers subsequent
	// checkpoints correctly.
	Instances map[int]int `json:"instances,omitempty"`
	// VTime is the process's virtual clock at checkpoint time (0 when
	// virtual-time accounting is off).
	VTime float64 `json:"vtime,omitempty"`
	// Manifest, when non-nil, records that Vars was pruned to exactly these
	// live variables (sorted); every other variable restores to its declared
	// initial value. nil means a full, unpruned environment (the legacy
	// format). The manifest travels inside the snapshot, so it is covered by
	// the same CRC as the payload it describes.
	Manifest []string `json:"manifest,omitempty"`
}

// clone returns a deep copy so stores never alias caller memory.
func (s Snapshot) clone() Snapshot {
	c := s
	c.Clock = s.Clock.Clone()
	if s.Vars != nil {
		c.Vars = make(map[string]int, len(s.Vars))
		for k, v := range s.Vars {
			c.Vars[k] = v
		}
	}
	if s.SendSeqs != nil {
		c.SendSeqs = append([]int(nil), s.SendSeqs...)
	}
	if s.RecvSeqs != nil {
		c.RecvSeqs = append([]int(nil), s.RecvSeqs...)
	}
	if s.Instances != nil {
		c.Instances = make(map[int]int, len(s.Instances))
		for k, v := range s.Instances {
			c.Instances[k] = v
		}
	}
	if s.Manifest != nil {
		c.Manifest = append([]string(nil), s.Manifest...)
	}
	return c
}

// Store is the stable-storage interface used by the runtime and the
// recovery machinery.
type Store interface {
	// Save persists one snapshot. Saving the same (proc, index, instance)
	// twice is an error: checkpoints are immutable once taken.
	Save(s Snapshot) error
	// Latest returns the snapshot with the highest instance for
	// (proc, cfgIndex), or ErrNotFound.
	Latest(proc, cfgIndex int) (Snapshot, error)
	// Get returns the exact snapshot, or ErrNotFound.
	Get(proc, cfgIndex, instance int) (Snapshot, error)
	// List returns all snapshots of proc ordered by (cfgIndex, instance).
	List(proc int) ([]Snapshot, error)
	// Indexes returns the sorted CFG checkpoint indexes for which EVERY one
	// of the n processes has at least one snapshot — the candidate straight
	// cuts.
	Indexes(n int) ([]int, error)
	// Delete removes one snapshot. Deleting a missing snapshot is an
	// error. Rollback recovery uses Delete to garbage-collect checkpoints
	// taken after the recovery line (they belong to the rolled-back
	// execution and would collide with deterministic re-execution).
	Delete(proc, cfgIndex, instance int) error
}

// ErrNotFound reports a missing snapshot.
var ErrNotFound = errors.New("storage: snapshot not found")

// ErrDuplicate reports an attempt to overwrite an existing checkpoint.
var ErrDuplicate = errors.New("storage: snapshot already exists")

// ErrCorrupt reports a snapshot whose persisted bytes fail integrity
// verification (CRC mismatch, truncation, undecodable body, or a broken
// delta chain). A corrupt snapshot must never be returned as state: callers
// match with errors.Is and fall back to an older recovery line.
var ErrCorrupt = errors.New("storage: snapshot corrupt")

// ErrTransient marks a storage fault that may succeed on retry (an
// injected chaos fault, a flaky device, a momentary IO error). The runtime
// retries operations failing with ErrTransient under capped exponential
// backoff; any other error is treated as permanent.
var ErrTransient = errors.New("storage: transient fault")

// ErrFsync marks a failed fsync. It is deliberately NOT ErrTransient:
// after a failed fsync the kernel may have dropped the dirty pages while
// leaving the file descriptor clean, so a retried fsync can "succeed"
// without the data ever reaching disk (the PostgreSQL fsyncgate failure
// mode). A save failing with ErrFsync is permanently failed; the caller
// must treat the process as crashed and re-derive state from what storage
// actually holds.
var ErrFsync = errors.New("storage: fsync failed")

// SnapshotRef names one snapshot without carrying its state — used by
// scrub reports to identify what was quarantined.
type SnapshotRef struct {
	Proc     int
	CFGIndex int
	Instance int
	// Reason is a human-readable cause (crc mismatch, torn write, broken
	// delta chain, ...).
	Reason string
}

// ScrubReport summarizes one Scrub pass.
type ScrubReport struct {
	// Quarantined lists the damaged snapshots removed from the store's
	// namespace. After a scrub the same (proc, index, instance) can be
	// saved again: replay regenerates quarantined checkpoints.
	Quarantined []SnapshotRef
	// Collateral counts healthy snapshots that had to be removed along
	// with damaged ones (delta-encoded chains cannot excise an interior
	// record, so quarantine truncates the chain's tail).
	Collateral int
	// TempFiles counts abandoned temp files cleaned up (file stores).
	TempFiles int
}

// Scrubber is implemented by stores that can verify and quarantine their
// contents. The runtime scrubs before rolling back so that corrupt
// snapshots discovered during recovery-line selection do not collide with
// the checkpoints replay will regenerate.
type Scrubber interface {
	Scrub() (ScrubReport, error)
}

type key struct{ proc, index, instance int }

// Memory is an in-memory Store safe for concurrent use. The zero value is
// ready to use.
type Memory struct {
	mu    sync.Mutex
	snaps map[key]Snapshot
}

var _ Store = (*Memory)(nil)

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory { return &Memory{} }

// Save implements Store.
func (m *Memory) Save(s Snapshot) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.snaps == nil {
		m.snaps = make(map[key]Snapshot)
	}
	k := key{s.Proc, s.CFGIndex, s.Instance}
	if _, ok := m.snaps[k]; ok {
		return fmt.Errorf("%w: proc=%d index=%d instance=%d", ErrDuplicate, s.Proc, s.CFGIndex, s.Instance)
	}
	m.snaps[k] = s.clone()
	return nil
}

// Latest implements Store.
func (m *Memory) Latest(proc, cfgIndex int) (Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	best, found := Snapshot{}, false
	for k, s := range m.snaps {
		if k.proc == proc && k.index == cfgIndex && (!found || k.instance > best.Instance) {
			best, found = s, true
		}
	}
	if !found {
		return Snapshot{}, fmt.Errorf("%w: proc=%d index=%d", ErrNotFound, proc, cfgIndex)
	}
	return best.clone(), nil
}

// Get implements Store.
func (m *Memory) Get(proc, cfgIndex, instance int) (Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.snaps[key{proc, cfgIndex, instance}]
	if !ok {
		return Snapshot{}, fmt.Errorf("%w: proc=%d index=%d instance=%d", ErrNotFound, proc, cfgIndex, instance)
	}
	return s.clone(), nil
}

// List implements Store.
func (m *Memory) List(proc int) ([]Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Snapshot
	for k, s := range m.snaps {
		if k.proc == proc {
			out = append(out, s.clone())
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].CFGIndex != out[j].CFGIndex {
			return out[i].CFGIndex < out[j].CFGIndex
		}
		return out[i].Instance < out[j].Instance
	})
	return out, nil
}

// Indexes implements Store.
func (m *Memory) Indexes(n int) ([]int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	// count[index] = set of procs having it.
	count := make(map[int]map[int]bool)
	for k := range m.snaps {
		if count[k.index] == nil {
			count[k.index] = make(map[int]bool)
		}
		count[k.index][k.proc] = true
	}
	var out []int
	for idx, procs := range count {
		if len(procs) == n {
			out = append(out, idx)
		}
	}
	sort.Ints(out)
	return out, nil
}

// Delete implements Store.
func (m *Memory) Delete(proc, cfgIndex, instance int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	k := key{proc, cfgIndex, instance}
	if _, ok := m.snaps[k]; !ok {
		return fmt.Errorf("%w: proc=%d index=%d instance=%d", ErrNotFound, proc, cfgIndex, instance)
	}
	delete(m.snaps, k)
	return nil
}

// Len returns the number of stored snapshots.
func (m *Memory) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.snaps)
}
