package storage

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/vclock"
)

func sampleSnap(proc, index, instance int) Snapshot {
	return Snapshot{
		Proc:      proc,
		CFGIndex:  index,
		Instance:  instance,
		Clock:     vclock.VC{1, 2, 3},
		Vars:      map[string]int{"x": 42, "iter": instance},
		PC:        "stmt-7",
		SendSeqs:  []int{0, 1, 2},
		RecvSeqs:  []int{3, 4, 5},
		Instances: map[int]int{index: instance, 9: 1},
	}
}

// storeUnderTest runs the same conformance suite against every Store
// implementation.
func storeUnderTest(t *testing.T, name string, mk func(t *testing.T) Store) {
	t.Run(name+"/SaveGetRoundTrip", func(t *testing.T) {
		st := mk(t)
		want := sampleSnap(1, 2, 0)
		if err := st.Save(want); err != nil {
			t.Fatal(err)
		}
		got, err := st.Get(1, 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
		}
	})

	t.Run(name+"/DuplicateRejected", func(t *testing.T) {
		st := mk(t)
		s := sampleSnap(0, 1, 0)
		if err := st.Save(s); err != nil {
			t.Fatal(err)
		}
		if err := st.Save(s); !errors.Is(err, ErrDuplicate) {
			t.Errorf("second save err = %v, want ErrDuplicate", err)
		}
	})

	t.Run(name+"/GetMissing", func(t *testing.T) {
		st := mk(t)
		if _, err := st.Get(9, 9, 9); !errors.Is(err, ErrNotFound) {
			t.Errorf("err = %v, want ErrNotFound", err)
		}
	})

	t.Run(name+"/LatestPicksHighestInstance", func(t *testing.T) {
		st := mk(t)
		for inst := 0; inst < 4; inst++ {
			if err := st.Save(sampleSnap(2, 1, inst)); err != nil {
				t.Fatal(err)
			}
		}
		got, err := st.Latest(2, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got.Instance != 3 {
			t.Errorf("Latest instance = %d, want 3", got.Instance)
		}
	})

	t.Run(name+"/LatestMissing", func(t *testing.T) {
		st := mk(t)
		if _, err := st.Latest(0, 0); !errors.Is(err, ErrNotFound) {
			t.Errorf("err = %v, want ErrNotFound", err)
		}
	})

	t.Run(name+"/ListSorted", func(t *testing.T) {
		st := mk(t)
		order := [][2]int{{2, 0}, {1, 1}, {1, 0}, {3, 0}}
		for _, o := range order {
			if err := st.Save(sampleSnap(0, o[0], o[1])); err != nil {
				t.Fatal(err)
			}
		}
		// Another process's snapshots must not leak in.
		if err := st.Save(sampleSnap(1, 1, 0)); err != nil {
			t.Fatal(err)
		}
		got, err := st.List(0)
		if err != nil {
			t.Fatal(err)
		}
		var keys [][2]int
		for _, s := range got {
			keys = append(keys, [2]int{s.CFGIndex, s.Instance})
		}
		want := [][2]int{{1, 0}, {1, 1}, {2, 0}, {3, 0}}
		if !reflect.DeepEqual(keys, want) {
			t.Errorf("List order = %v, want %v", keys, want)
		}
	})

	t.Run(name+"/IndexesRequiresAllProcs", func(t *testing.T) {
		st := mk(t)
		// Index 1 on both procs, index 2 only on proc 0.
		for _, pi := range [][2]int{{0, 1}, {1, 1}, {0, 2}} {
			if err := st.Save(sampleSnap(pi[0], pi[1], 0)); err != nil {
				t.Fatal(err)
			}
		}
		got, err := st.Indexes(2)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, []int{1}) {
			t.Errorf("Indexes = %v, want [1]", got)
		}
	})

	t.Run(name+"/Delete", func(t *testing.T) {
		st := mk(t)
		if err := st.Save(sampleSnap(0, 1, 0)); err != nil {
			t.Fatal(err)
		}
		if err := st.Delete(0, 1, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Get(0, 1, 0); !errors.Is(err, ErrNotFound) {
			t.Errorf("deleted snapshot still present: %v", err)
		}
		if err := st.Delete(0, 1, 0); !errors.Is(err, ErrNotFound) {
			t.Errorf("double delete err = %v, want ErrNotFound", err)
		}
		// Save after delete must succeed (rollback re-execution).
		if err := st.Save(sampleSnap(0, 1, 0)); err != nil {
			t.Errorf("re-save after delete: %v", err)
		}
	})

	t.Run(name+"/NoAliasing", func(t *testing.T) {
		st := mk(t)
		s := sampleSnap(0, 1, 0)
		if err := st.Save(s); err != nil {
			t.Fatal(err)
		}
		s.Vars["x"] = 999 // mutate caller copy after save
		s.Clock[0] = 999
		got, err := st.Get(0, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got.Vars["x"] != 42 || got.Clock[0] != 1 {
			t.Errorf("store aliased caller memory: %+v", got)
		}
		got.Vars["x"] = 777 // mutate returned copy
		again, _ := st.Get(0, 1, 0)
		if again.Vars["x"] != 42 {
			t.Error("store returned aliased snapshot")
		}
	})
}

func TestMemoryStore(t *testing.T) {
	storeUnderTest(t, "memory", func(t *testing.T) Store { return NewMemory() })
}

func TestFileStore(t *testing.T) {
	storeUnderTest(t, "file", func(t *testing.T) Store {
		st, err := NewFile(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		return st
	})
}

func TestMemoryLen(t *testing.T) {
	m := NewMemory()
	if m.Len() != 0 {
		t.Fatal("fresh store not empty")
	}
	if err := m.Save(sampleSnap(0, 1, 0)); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
}

func TestFileStoreDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(sampleSnap(0, 1, 0)); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the body.
	path := filepath.Join(dir, "p0_i1_k0.ckpt")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(0, 1, 0); err == nil {
		t.Error("corrupted snapshot read back without error")
	}
}

func TestFileStoreTruncatedFrame(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "p0_i1_k0.ckpt")
	if err := os.WriteFile(path, []byte{1, 2}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(0, 1, 0); err == nil {
		t.Error("truncated snapshot read back without error")
	}
}

func TestFileStoreIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"README", "px_iy_kz.ckpt", "p1_i2.ckpt", "notckpt.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Save(sampleSnap(0, 1, 0)); err != nil {
		t.Fatal(err)
	}
	list, err := st.List(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 {
		t.Errorf("List = %d snapshots, want 1 (foreign files must be ignored)", len(list))
	}
	idx, err := st.Indexes(1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(idx, []int{1}) {
		t.Errorf("Indexes = %v, want [1]", idx)
	}
}

func TestParseName(t *testing.T) {
	tests := []struct {
		name                  string
		proc, index, instance int
		ok                    bool
	}{
		{"p0_i1_k2.ckpt", 0, 1, 2, true},
		{"p10_i20_k30.ckpt", 10, 20, 30, true},
		{"p0_i1_k2", 0, 0, 0, false},
		{"q0_i1_k2.ckpt", 0, 0, 0, false},
		{"p0_i1.ckpt", 0, 0, 0, false},
		{"p0_i1_kx.ckpt", 0, 0, 0, false},
	}
	for _, tt := range tests {
		p, i, k, ok := parseName(tt.name)
		if ok != tt.ok || p != tt.proc || i != tt.index || k != tt.instance {
			t.Errorf("parseName(%q) = (%d,%d,%d,%v), want (%d,%d,%d,%v)",
				tt.name, p, i, k, ok, tt.proc, tt.index, tt.instance, tt.ok)
		}
	}
}

func TestQuickParseNameRoundTrip(t *testing.T) {
	f := func(p, i, k uint8) bool {
		st := &File{dir: "."}
		name := filepath.Base(st.path(int(p), int(i), int(k)))
		gp, gi, gk, ok := parseName(name)
		return ok && gp == int(p) && gi == int(i) && gk == int(k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemoryConcurrentSaves(t *testing.T) {
	m := NewMemory()
	const workers = 8
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			var err error
			for i := 0; i < 50 && err == nil; i++ {
				err = m.Save(sampleSnap(w, 1, i))
			}
			done <- err
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if m.Len() != workers*50 {
		t.Fatalf("Len = %d, want %d", m.Len(), workers*50)
	}
}

func BenchmarkMemorySave(b *testing.B) {
	m := NewMemory()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.Save(sampleSnap(0, 1, i))
	}
}

func BenchmarkFileSave(b *testing.B) {
	st, err := NewFile(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Save(sampleSnap(0, 1, i)); err != nil {
			b.Fatal(err)
		}
	}
}
