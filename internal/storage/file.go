package storage

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// File is a durable Store that writes each snapshot as one file under a
// directory, framed as [4-byte big-endian CRC32][JSON body]. Writes go
// through a temp file + fsync + rename + directory fsync, so neither a
// torn snapshot nor a lost acknowledged checkpoint can survive a host
// crash. Reads verify the CRC so silent corruption surfaces as ErrCorrupt
// rather than a bogus restart state, and Scrub quarantines damaged files
// so the namespace heals after corruption is detected.
type File struct {
	dir string
	mu  sync.Mutex
}

// quarantineDir is where Scrub moves damaged snapshot files, relative to
// the store root. It keeps the evidence for post-mortems without letting
// the corrupt file shadow a regenerated checkpoint.
const quarantineDir = "quarantine"

var _ Store = (*File)(nil)

// NewFile creates (if needed) and opens a file-backed store rooted at dir.
func NewFile(dir string) (*File, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create dir: %w", err)
	}
	return &File{dir: dir}, nil
}

func (f *File) path(proc, index, instance int) string {
	name := fmt.Sprintf("p%d_i%d_k%d.ckpt", proc, index, instance)
	return filepath.Join(f.dir, name)
}

// parseName inverts path naming; ok=false for foreign files.
func parseName(name string) (proc, index, instance int, ok bool) {
	base := strings.TrimSuffix(name, ".ckpt")
	if base == name {
		return 0, 0, 0, false
	}
	parts := strings.Split(base, "_")
	if len(parts) != 3 {
		return 0, 0, 0, false
	}
	vals := make([]int, 3)
	for i, prefix := range []string{"p", "i", "k"} {
		s := strings.TrimPrefix(parts[i], prefix)
		if s == parts[i] {
			return 0, 0, 0, false
		}
		v, err := strconv.Atoi(s)
		if err != nil {
			return 0, 0, 0, false
		}
		vals[i] = v
	}
	return vals[0], vals[1], vals[2], true
}

// Save implements Store.
func (f *File) Save(s Snapshot) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	path := f.path(s.Proc, s.CFGIndex, s.Instance)
	if _, err := os.Stat(path); err == nil {
		return fmt.Errorf("%w: %s", ErrDuplicate, filepath.Base(path))
	}
	body, err := json.Marshal(s)
	if err != nil {
		return fmt.Errorf("storage: encode snapshot: %w", err)
	}
	frame := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(frame[:4], crc32.ChecksumIEEE(body))
	copy(frame[4:], body)

	tmp, err := os.CreateTemp(f.dir, ".tmp-ckpt-*")
	if err != nil {
		return fmt.Errorf("storage: temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(frame); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("storage: write snapshot: %w", err)
	}
	if err := fsyncData(tmp); err != nil {
		// fsyncgate: a failed fsync is PERMANENT, not transient. The
		// kernel may have dropped the dirty pages while clearing the error
		// flag, so a retried fsync can return success with the data never
		// on disk. Fail the save with ErrFsync so the caller rides the
		// crash→recovery path instead of retrying the lie.
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("%w: snapshot %s: %v", ErrFsync, filepath.Base(path), err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("storage: close snapshot: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("storage: publish snapshot: %w", err)
	}
	// The rename is only durable once the directory entry itself is on
	// disk: without this fsync a host crash can lose an acknowledged
	// checkpoint even though the data blocks were synced above.
	if err := syncDir(f.dir); err != nil {
		// Un-publish: the snapshot must not be readable when its
		// durability cannot be vouched for — a crash after a nil return
		// here could lose an "acknowledged" checkpoint.
		os.Remove(path)
		return fmt.Errorf("%w: snapshot dir for %s: %v", ErrFsync, filepath.Base(path), err)
	}
	return nil
}

// fsyncData is a seam so tests can inject fsync failures (fsyncgate).
var fsyncData = func(f *os.File) error { return f.Sync() }

// syncDir fsyncs a directory so renames within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = fsyncData(d)
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func (f *File) load(path string) (Snapshot, error) {
	frame, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return Snapshot{}, fmt.Errorf("%w: %s", ErrNotFound, filepath.Base(path))
		}
		return Snapshot{}, fmt.Errorf("storage: read snapshot: %w", err)
	}
	if len(frame) < 4 {
		return Snapshot{}, fmt.Errorf("%w: %s truncated", ErrCorrupt, filepath.Base(path))
	}
	want := binary.BigEndian.Uint32(frame[:4])
	body := frame[4:]
	if got := crc32.ChecksumIEEE(body); got != want {
		return Snapshot{}, fmt.Errorf("%w: %s crc %08x != %08x",
			ErrCorrupt, filepath.Base(path), got, want)
	}
	var s Snapshot
	if err := json.Unmarshal(body, &s); err != nil {
		return Snapshot{}, fmt.Errorf("%w: %s undecodable: %v", ErrCorrupt, filepath.Base(path), err)
	}
	return s, nil
}

// Scrub implements Scrubber: it verifies every snapshot file and moves the
// damaged ones into the quarantine subdirectory (plus removes abandoned
// temp files from interrupted saves). After a scrub, reads and saves
// behave as if the damaged snapshots never existed.
func (f *File) Scrub() (ScrubReport, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var rep ScrubReport
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return rep, fmt.Errorf("storage: scrub: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, ".tmp-ckpt-") {
			if err := os.Remove(filepath.Join(f.dir, name)); err != nil {
				return rep, fmt.Errorf("storage: scrub temp file: %w", err)
			}
			rep.TempFiles++
			continue
		}
		proc, index, instance, ok := parseName(name)
		if !ok {
			continue
		}
		_, lerr := f.load(filepath.Join(f.dir, name))
		if lerr == nil {
			continue
		}
		if !errors.Is(lerr, ErrCorrupt) {
			return rep, fmt.Errorf("storage: scrub read %s: %w", name, lerr)
		}
		qdir := filepath.Join(f.dir, quarantineDir)
		if err := os.MkdirAll(qdir, 0o755); err != nil {
			return rep, fmt.Errorf("storage: scrub quarantine dir: %w", err)
		}
		if err := os.Rename(filepath.Join(f.dir, name), filepath.Join(qdir, name)); err != nil {
			return rep, fmt.Errorf("storage: scrub quarantine %s: %w", name, err)
		}
		rep.Quarantined = append(rep.Quarantined, SnapshotRef{
			Proc: proc, CFGIndex: index, Instance: instance, Reason: lerr.Error(),
		})
	}
	if len(rep.Quarantined) > 0 || rep.TempFiles > 0 {
		if err := syncDir(f.dir); err != nil {
			return rep, fmt.Errorf("storage: scrub sync dir: %w", err)
		}
	}
	return rep, nil
}

var _ Scrubber = (*File)(nil)

// Get implements Store.
func (f *File) Get(proc, cfgIndex, instance int) (Snapshot, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.load(f.path(proc, cfgIndex, instance))
}

// Latest implements Store.
func (f *File) Latest(proc, cfgIndex int) (Snapshot, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return Snapshot{}, fmt.Errorf("storage: list dir: %w", err)
	}
	best := -1
	for _, e := range entries {
		p, i, k, ok := parseName(e.Name())
		if ok && p == proc && i == cfgIndex && k > best {
			best = k
		}
	}
	if best < 0 {
		return Snapshot{}, fmt.Errorf("%w: proc=%d index=%d", ErrNotFound, proc, cfgIndex)
	}
	return f.load(f.path(proc, cfgIndex, best))
}

// List implements Store.
func (f *File) List(proc int) ([]Snapshot, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, fmt.Errorf("storage: list dir: %w", err)
	}
	type pi struct{ index, instance int }
	var keys []pi
	for _, e := range entries {
		p, i, k, ok := parseName(e.Name())
		if ok && p == proc {
			keys = append(keys, pi{i, k})
		}
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].index != keys[b].index {
			return keys[a].index < keys[b].index
		}
		return keys[a].instance < keys[b].instance
	})
	out := make([]Snapshot, 0, len(keys))
	for _, k := range keys {
		s, err := f.load(f.path(proc, k.index, k.instance))
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Delete implements Store.
func (f *File) Delete(proc, cfgIndex, instance int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	path := f.path(proc, cfgIndex, instance)
	if err := os.Remove(path); err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("%w: %s", ErrNotFound, filepath.Base(path))
		}
		return fmt.Errorf("storage: delete snapshot: %w", err)
	}
	return nil
}

// Indexes implements Store.
func (f *File) Indexes(n int) ([]int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, fmt.Errorf("storage: list dir: %w", err)
	}
	count := make(map[int]map[int]bool)
	for _, e := range entries {
		p, i, _, ok := parseName(e.Name())
		if !ok {
			continue
		}
		if count[i] == nil {
			count[i] = make(map[int]bool)
		}
		count[i][p] = true
	}
	var out []int
	for idx, procs := range count {
		if len(procs) == n {
			out = append(out, idx)
		}
	}
	sort.Ints(out)
	return out, nil
}
