package storage

import (
	"errors"
	"os"
	"reflect"
	"testing"

	"repro/internal/vclock"
)

func nsSnap(proc, idx, inst, tick int) Snapshot {
	clk := make(vclock.VC, 4)
	clk[proc] = uint64(tick)
	return Snapshot{
		Proc: proc, CFGIndex: idx, Instance: inst, Clock: clk,
		Vars: map[string]int{"x": 1000*tick + 100*proc + 10*idx + inst},
	}
}

func TestNamespaceTwoJobsOneStore(t *testing.T) {
	// Regression for the fleet's shared-store collision: two jobs with
	// identical shapes save identical (proc, index, instance) keys into one
	// backing store. Raw sharing makes the second save ErrDuplicate;
	// namespaced, both land, and each job reads back only its own state.
	for _, tc := range []struct {
		name  string
		inner func(t *testing.T) Store
	}{
		{"memory", func(t *testing.T) Store { return NewMemory() }},
		{"file", func(t *testing.T) Store {
			st, err := NewFile(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return st
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			inner := tc.inner(t)
			jobA, err := NewNamespace(inner, 0, 2)
			if err != nil {
				t.Fatal(err)
			}
			jobB, err := NewNamespace(inner, 1, 2)
			if err != nil {
				t.Fatal(err)
			}

			for p := 0; p < 2; p++ {
				if err := jobA.Save(nsSnap(p, 1, 1, 10)); err != nil {
					t.Fatalf("job A save p%d: %v", p, err)
				}
				// Same keys from job B must NOT collide.
				if err := jobB.Save(nsSnap(p, 1, 1, 20)); err != nil {
					t.Fatalf("job B save p%d: %v", p, err)
				}
			}
			// ...but a re-save within one job still does.
			if err := jobA.Save(nsSnap(0, 1, 1, 10)); !errors.Is(err, ErrDuplicate) {
				t.Fatalf("intra-job duplicate: err = %v, want ErrDuplicate", err)
			}

			// Each job reads back its own snapshot under its own proc number.
			gotA, err := jobA.Get(1, 1, 1)
			if err != nil {
				t.Fatal(err)
			}
			gotB, err := jobB.Latest(1, 1)
			if err != nil {
				t.Fatal(err)
			}
			if gotA.Proc != 1 || gotB.Proc != 1 {
				t.Errorf("procs = %d, %d; want un-shifted 1, 1", gotA.Proc, gotB.Proc)
			}
			if gotA.Vars["x"] == gotB.Vars["x"] {
				t.Errorf("jobs read the same snapshot back: %v", gotA.Vars)
			}
			if want := nsSnap(1, 1, 1, 10).Vars["x"]; gotA.Vars["x"] != want {
				t.Errorf("job A x = %d, want %d", gotA.Vars["x"], want)
			}

			// List is scoped to the job.
			for _, job := range []*Namespace{jobA, jobB} {
				snaps, err := job.List(0)
				if err != nil {
					t.Fatal(err)
				}
				if len(snaps) != 1 || snaps[0].Proc != 0 {
					t.Errorf("List(0) = %+v, want one proc-0 snapshot", snaps)
				}
			}

			// Deleting job B's state does not touch job A's.
			for p := 0; p < 2; p++ {
				if err := jobB.Delete(p, 1, 1); err != nil {
					t.Fatalf("job B delete p%d: %v", p, err)
				}
			}
			if _, err := jobB.Latest(1, 1); !errors.Is(err, ErrNotFound) {
				t.Errorf("job B Latest after delete: err = %v, want ErrNotFound", err)
			}
			if _, err := jobA.Get(1, 1, 1); err != nil {
				t.Errorf("job A lost its snapshot to job B's delete: %v", err)
			}
		})
	}
}

func TestNamespaceIndexesScopedToJob(t *testing.T) {
	inner := NewMemory()
	jobA, _ := NewNamespace(inner, 0, 2)
	jobB, _ := NewNamespace(inner, 1, 2)

	// Job A has index 1 on both procs; job B only on proc 0. The straight
	// cut candidate {1} belongs to A alone — the raw store's Indexes would
	// see 4 distinct procs and report nothing, or worse, mix jobs.
	for p := 0; p < 2; p++ {
		if err := jobA.Save(nsSnap(p, 1, 1, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := jobB.Save(nsSnap(0, 1, 1, 1)); err != nil {
		t.Fatal(err)
	}

	idxA, err := jobA.Indexes(2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(idxA, []int{1}) {
		t.Errorf("job A Indexes = %v, want [1]", idxA)
	}
	idxB, err := jobB.Indexes(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(idxB) != 0 {
		t.Errorf("job B Indexes = %v, want none (proc 1 has no snapshot)", idxB)
	}
}

func TestNamespaceRejectsOutOfRange(t *testing.T) {
	ns, err := NewNamespace(NewMemory(), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ns.Save(nsSnap(2, 1, 1, 1)); err == nil {
		t.Error("Save(proc=2) accepted in a 2-proc namespace")
	}
	if _, err := ns.List(-1); err == nil {
		t.Error("List(-1) accepted")
	}
	if _, err := ns.Indexes(3); err == nil {
		t.Error("Indexes(3) accepted in a 2-proc namespace")
	}
	if _, err := NewNamespace(NewMemory(), -1, 2); err == nil {
		t.Error("negative job accepted")
	}
}

// TestNamespaceForwardsScrubber: a corrupt record in job A's view must
// quarantine through A's namespace WITHOUT touching job B's healthy
// state, and A's report must come back in A's own process numbering.
func TestNamespaceForwardsScrubber(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	jobA, err := NewNamespace(st, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	jobB, err := NewNamespace(st, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 2; p++ {
		if err := jobA.Save(nsSnap(p, 0, 0, 1)); err != nil {
			t.Fatal(err)
		}
		if err := jobB.Save(nsSnap(p, 0, 0, 1)); err != nil {
			t.Fatal(err)
		}
	}
	// Damage job A's proc-1 snapshot on disk (backing proc number 1).
	damagePath := st.path(1, 0, 0)
	if err := os.WriteFile(damagePath, []byte("rotted beyond recognition"), 0o644); err != nil {
		t.Fatal(err)
	}

	scr, ok := any(jobA).(Scrubber)
	if !ok {
		t.Fatal("namespace does not forward Scrubber; fleet quarantine silently no-ops")
	}
	rep, err := scr.Scrub()
	if err != nil {
		t.Fatalf("Scrub through namespace: %v", err)
	}
	if len(rep.Quarantined) != 1 {
		t.Fatalf("Quarantined = %+v, want exactly job A's damaged record", rep.Quarantined)
	}
	// The ref must be in JOB-LOCAL numbering: backing proc 1 is A's proc 1.
	if got := rep.Quarantined[0]; got.Proc != 1 || got.CFGIndex != 0 || got.Instance != 0 {
		t.Fatalf("quarantined ref %+v not translated to job-local numbering", got)
	}
	// Job A's damaged key is gone and savable again...
	if _, err := jobA.Get(1, 0, 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("jobA.Get(damaged) = %v, want ErrNotFound after scrub", err)
	}
	if err := jobA.Save(nsSnap(1, 0, 0, 2)); err != nil {
		t.Fatalf("jobA re-save after scrub: %v", err)
	}
	// ...and job B's state was never touched.
	for p := 0; p < 2; p++ {
		if _, err := jobB.Get(p, 0, 0); err != nil {
			t.Fatalf("jobB.Get(%d,0,0) after A's scrub: %v", p, err)
		}
	}
}

// TestNamespaceScrubScopesReport: damage in job B's range, scrubbed
// through job A, heals the shared store but is reported to A only as
// collateral — B's key space never appears in A's report.
func TestNamespaceScrubScopesReport(t *testing.T) {
	st, err := NewFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	jobA, _ := NewNamespace(st, 0, 2)
	jobB, _ := NewNamespace(st, 1, 2)
	if err := jobB.Save(nsSnap(0, 0, 0, 1)); err != nil {
		t.Fatal(err)
	}
	// Damage job B's proc-0 snapshot (backing proc 2).
	if err := os.WriteFile(st.path(2, 0, 0), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := jobA.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) != 0 {
		t.Fatalf("job A's report leaks job B's keys: %+v", rep.Quarantined)
	}
	if rep.Collateral != 1 {
		t.Fatalf("Collateral = %d, want 1 (B's damage healed as a side effect)", rep.Collateral)
	}
	// The shared pass still healed B's namespace.
	if _, err := jobB.Get(0, 0, 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("jobB damaged key after A's scrub = %v, want ErrNotFound", err)
	}
}

// TestNamespaceScrubNonScrubberInner: over a plain memory store the scrub
// is a clean no-op, not a panic or an error.
func TestNamespaceScrubNonScrubberInner(t *testing.T) {
	ns, err := NewNamespace(NewMemory(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ns.Scrub()
	if err != nil {
		t.Fatalf("Scrub over non-scrubber inner: %v", err)
	}
	if len(rep.Quarantined) != 0 || rep.Collateral != 0 || rep.TempFiles != 0 {
		t.Fatalf("no-op scrub returned non-empty report: %+v", rep)
	}
}
