package storage

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/vclock"
)

func TestIncrementalStoreConformance(t *testing.T) {
	storeUnderTest(t, "incremental", func(t *testing.T) Store { return NewIncremental(3) })
	storeUnderTest(t, "incremental-every1", func(t *testing.T) Store { return NewIncremental(1) })
}

// varySnap builds a snapshot where only a few variables change between
// instances, the case incremental checkpointing wins on.
func varySnap(proc, index, instance int) Snapshot {
	vars := map[string]int{
		"bigstate_a": 1, "bigstate_b": 2, "bigstate_c": 3,
		"bigstate_d": 4, "bigstate_e": 5,
		"iter": instance, // the only thing that changes
	}
	clk := vclock.New(2)
	clk[proc] = uint64(instance + 1)
	return Snapshot{
		Proc: proc, CFGIndex: index, Instance: instance,
		Clock: clk, Vars: vars, PC: "7",
	}
}

func TestIncrementalDeltaChainReconstruction(t *testing.T) {
	inc := NewIncremental(4)
	for i := 0; i < 10; i++ {
		if err := inc.Save(varySnap(0, 1, i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		got, err := inc.Get(0, 1, i)
		if err != nil {
			t.Fatal(err)
		}
		want := varySnap(0, 1, i)
		if !reflect.DeepEqual(got.Vars, want.Vars) {
			t.Errorf("instance %d reconstructed vars = %v, want %v", i, got.Vars, want.Vars)
		}
		if got.PC != "7" || got.Instance != i {
			t.Errorf("instance %d metadata wrong: %+v", i, got)
		}
	}
	latest, err := inc.Latest(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if latest.Instance != 9 || latest.Vars["iter"] != 9 {
		t.Errorf("Latest = %+v", latest)
	}
}

func TestIncrementalSavesSpace(t *testing.T) {
	inc := NewIncremental(8)
	full := NewIncremental(1) // every snapshot full
	for i := 0; i < 16; i++ {
		if err := inc.Save(varySnap(0, 1, i)); err != nil {
			t.Fatal(err)
		}
		if err := full.Save(varySnap(0, 1, i)); err != nil {
			t.Fatal(err)
		}
	}
	is, fs := inc.Stats(), full.Stats()
	incTotal := is.FullBytes + is.DeltaBytes
	fullTotal := fs.FullBytes + fs.DeltaBytes
	if incTotal >= fullTotal/2 {
		t.Errorf("incremental stored %d bytes, full %d: expected large savings", incTotal, fullTotal)
	}
	if is.DeltaBytes == 0 {
		t.Error("no deltas recorded")
	}
}

func TestIncrementalVarRemoval(t *testing.T) {
	inc := NewIncremental(8)
	s0 := varySnap(0, 1, 0)
	if err := inc.Save(s0); err != nil {
		t.Fatal(err)
	}
	s1 := varySnap(0, 1, 1)
	delete(s1.Vars, "bigstate_e") // variable disappears
	if err := inc.Save(s1); err != nil {
		t.Fatal(err)
	}
	got, err := inc.Get(0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got.Vars["bigstate_e"]; ok {
		t.Error("removed variable resurfaced in reconstruction")
	}
	if len(got.Vars) != len(s1.Vars) {
		t.Errorf("vars = %v", got.Vars)
	}
}

func TestIncrementalDeleteTailOnly(t *testing.T) {
	inc := NewIncremental(4)
	for i := 0; i < 3; i++ {
		if err := inc.Save(varySnap(0, 1, i)); err != nil {
			t.Fatal(err)
		}
	}
	// Interior delete refused.
	if err := inc.Delete(0, 1, 1); err == nil {
		t.Fatal("interior delete accepted")
	}
	// Tail deletes unwind fine.
	for i := 2; i >= 0; i-- {
		if err := inc.Delete(0, 1, i); err != nil {
			t.Fatalf("tail delete %d: %v", i, err)
		}
	}
	if _, err := inc.Get(0, 1, 0); !errors.Is(err, ErrNotFound) {
		t.Error("store not empty after unwinding")
	}
}
