package match

import (
	"repro/internal/cfg"
)

// This file implements path search over the extended CFG Ĝ — the engine
// behind Condition 1 and Algorithm 3.2 (§3.3). A *causal path* between two
// checkpoint nodes is a path over control and message edges that uses at
// least one message edge: only such paths can create the happened-before
// relation between checkpoints of DIFFERENT processes (a pure control path
// cannot cross process boundaries). Requiring a message edge refines the
// paper's Condition 1 into an exact test; see DESIGN.md.
//
// The search distinguishes paths that traverse a backward control edge
// from those that do not: the paper's loop-preservation optimization
// (end of §3.3) applies only when every violating path needs a back edge
// (Figure 6), so the search prefers back-edge-free witnesses.

// PathStep is one traversed edge in a causal path.
type PathStep struct {
	From, To  int
	IsMessage bool
	IsBack    bool // backward control edge
}

// CausalPath is a witness path between two nodes of Ĝ.
type CausalPath struct {
	Nodes []int
	Steps []PathStep
	// HasBackEdge reports whether the witness traverses a backward control
	// edge. The search returns a back-edge-free witness whenever one
	// exists, so HasBackEdge==true means EVERY causal path between the
	// endpoints needs a back edge.
	HasBackEdge bool
}

// searchState is (node, used a message edge).
type searchState struct {
	node int
	msg  bool
}

// pathNode links BFS discoveries for path reconstruction.
type pathNode struct {
	st   searchState
	prev *pathNode
	step PathStep
	used bool // step is valid (false only for the start)
}

// FindCausalPath returns a causal path (≥1 message edge) from a to b in the
// extended graph, or nil when none exists. Among existing paths it prefers
// one without backward control edges, then fewer steps.
func (x *Extended) FindCausalPath(a, b int) *CausalPath {
	backSet := make(map[cfg.Edge]bool)
	for _, e := range x.G.BackEdges() {
		backSet[e] = true
	}
	// Two-pass BFS: first forbid back edges entirely; if that fails, allow
	// them. This guarantees the back-edge-free preference.
	for _, allowBack := range []bool{false, true} {
		if p := x.bfs(a, b, allowBack, backSet); p != nil {
			return p
		}
	}
	return nil
}

func (x *Extended) bfs(a, b int, allowBack bool, backSet map[cfg.Edge]bool) *CausalPath {
	start := &pathNode{st: searchState{node: a}}
	seen := map[searchState]bool{start.st: true}
	queue := []*pathNode{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.st.node == b && cur.st.msg {
			return buildPath(cur)
		}
		for _, e := range x.G.Succs(cur.st.node) {
			isBack := backSet[e]
			if isBack && !allowBack {
				continue
			}
			next := searchState{node: e.To, msg: cur.st.msg}
			if seen[next] {
				continue
			}
			seen[next] = true
			queue = append(queue, &pathNode{
				st: next, prev: cur, used: true,
				step: PathStep{From: e.From, To: e.To, IsBack: isBack},
			})
		}
		for _, r := range x.msgFrom[cur.st.node] {
			next := searchState{node: r, msg: true}
			if seen[next] {
				continue
			}
			seen[next] = true
			queue = append(queue, &pathNode{
				st: next, prev: cur, used: true,
				step: PathStep{From: cur.st.node, To: r, IsMessage: true},
			})
		}
	}
	return nil
}

func buildPath(end *pathNode) *CausalPath {
	var steps []PathStep
	for q := end; q != nil && q.used; q = q.prev {
		steps = append(steps, q.step)
	}
	// Reverse into forward order.
	for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
		steps[i], steps[j] = steps[j], steps[i]
	}
	p := &CausalPath{Steps: steps}
	if len(steps) > 0 {
		p.Nodes = append(p.Nodes, steps[0].From)
		for _, s := range steps {
			p.Nodes = append(p.Nodes, s.To)
			if s.IsBack {
				p.HasBackEdge = true
			}
		}
	}
	return p
}

// ContainsNode reports whether the path visits node id.
func (p *CausalPath) ContainsNode(id int) bool {
	for _, n := range p.Nodes {
		if n == id {
			return true
		}
	}
	return false
}
