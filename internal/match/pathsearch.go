package match

import (
	"context"

	"repro/internal/cfg"
	"repro/internal/par"
)

// This file implements path search over the extended CFG Ĝ — the engine
// behind Condition 1 and Algorithm 3.2 (§3.3). A *causal path* between two
// checkpoint nodes is a path over control and message edges that uses at
// least one message edge: only such paths can create the happened-before
// relation between checkpoints of DIFFERENT processes (a pure control path
// cannot cross process boundaries). Requiring a message edge refines the
// paper's Condition 1 into an exact test; see DESIGN.md.
//
// The search distinguishes paths that traverse a backward control edge
// from those that do not: the paper's loop-preservation optimization
// (end of §3.3) applies only when every violating path needs a back edge
// (Figure 6), so the search prefers back-edge-free witnesses.
//
// All searches run over the product graph of (node, used-a-message-edge)
// states, encoded as node<<1|msg, with bitset visited sets and index
// arrays instead of maps. Phase III's quadratic pair queries are answered
// from memoized per-source closures (reachSets) computed by one BFS per
// (source, back-edge policy) — the "memoized graph queries" of the
// pipeline optimization — rather than a fresh search per pair.

// PathStep is one traversed edge in a causal path.
type PathStep struct {
	From, To  int
	IsMessage bool
	IsBack    bool // backward control edge
}

// CausalPath is a witness path between two nodes of Ĝ.
type CausalPath struct {
	Nodes []int
	Steps []PathStep
	// HasBackEdge reports whether the witness traverses a backward control
	// edge. The search returns a back-edge-free witness whenever one
	// exists, so HasBackEdge==true means EVERY causal path between the
	// endpoints needs a back edge.
	HasBackEdge bool
}

// reachSets is the memoized closure of one source node over Ĝ:
//
//	any   — nodes reachable via control+message edges;
//	msg   — nodes reachable having used ≥1 message edge (causal);
//	anyNB — any, with backward control edges forbidden;
//	msgNB — msg, with backward control edges forbidden.
type reachSets struct {
	any, msg, anyNB, msgNB cfg.Bitset
}

// witnessScratch holds the reusable state of the witness-path BFS. Sized
// to the product graph (2 states per node); serial use only.
type witnessScratch struct {
	seen  cfg.Bitset
	queue []int
	prev  []int // predecessor state per state
	step  []PathStep
}

func (x *Extended) getScratch() *witnessScratch {
	n := 2 * len(x.G.Nodes)
	if x.scratch == nil {
		x.scratch = &witnessScratch{
			seen:  x.arena.Bits(n),
			queue: x.arena.Ints(n),
			prev:  x.arena.Ints(n),
			step:  make([]PathStep, n),
		}
	}
	return x.scratch
}

// FindCausalPath returns a causal path (≥1 message edge) from a to b in the
// extended graph, or nil when none exists. Among existing paths it prefers
// one without backward control edges, then fewer steps.
func (x *Extended) FindCausalPath(a, b int) *CausalPath {
	if x.reach != nil && x.reach[a] != nil && !x.reach[a].msg.Has(b) {
		return nil // memoized closure already knows there is no path
	}
	// Two-pass BFS: first forbid back edges entirely; if that fails, allow
	// them. This guarantees the back-edge-free preference.
	for _, allowBack := range []bool{false, true} {
		if p := x.witnessBFS(a, b, allowBack); p != nil {
			return p
		}
	}
	return nil
}

// witnessBFS is a breadth-first search over product states recording
// predecessor links for path reconstruction.
func (x *Extended) witnessBFS(a, b int, allowBack bool) *CausalPath {
	g := x.G
	sc := x.getScratch()
	sc.seen.Zero()
	queue := sc.queue[:0]
	start := a << 1
	sc.seen.Set(start)
	sc.prev[start] = -1
	queue = append(queue, start)
	goal := b<<1 | 1
	for qi := 0; qi < len(queue); qi++ {
		st := queue[qi]
		if st == goal {
			return x.buildPath(sc, st)
		}
		node, msg := st>>1, st&1
		for _, e := range g.Succs(node) {
			isBack := g.IsBackEdge(e)
			if isBack && !allowBack {
				continue
			}
			nst := e.To<<1 | msg
			if sc.seen.Has(nst) {
				continue
			}
			sc.seen.Set(nst)
			sc.prev[nst] = st
			sc.step[nst] = PathStep{From: e.From, To: e.To, IsBack: isBack}
			queue = append(queue, nst)
		}
		for _, r := range x.msgFrom[node] {
			nst := r<<1 | 1
			if sc.seen.Has(nst) {
				continue
			}
			sc.seen.Set(nst)
			sc.prev[nst] = st
			sc.step[nst] = PathStep{From: node, To: r, IsMessage: true}
			queue = append(queue, nst)
		}
	}
	return nil
}

func (x *Extended) buildPath(sc *witnessScratch, end int) *CausalPath {
	var steps []PathStep
	for st := end; sc.prev[st] != -1; st = sc.prev[st] {
		steps = append(steps, sc.step[st])
	}
	// Reverse into forward order.
	for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
		steps[i], steps[j] = steps[j], steps[i]
	}
	p := &CausalPath{Steps: steps}
	if len(steps) > 0 {
		p.Nodes = append(p.Nodes, steps[0].From)
		for _, s := range steps {
			p.Nodes = append(p.Nodes, s.To)
			if s.IsBack {
				p.HasBackEdge = true
			}
		}
	}
	return p
}

// ContainsNode reports whether the path visits node id.
func (p *CausalPath) ContainsNode(id int) bool {
	for _, n := range p.Nodes {
		if n == id {
			return true
		}
	}
	return false
}

// ---- memoized closures ----

// reachFor returns the memoized closure of source node a, computing it on
// first use. Not safe for concurrent callers on a cache miss; parallel
// users warm the cache through PrecomputeReach first.
func (x *Extended) reachFor(a int) *reachSets {
	if x.reach == nil {
		x.reach = make([]*reachSets, len(x.G.Nodes))
	}
	if rs := x.reach[a]; rs != nil {
		return rs
	}
	rs := x.computeReach(a)
	x.reach[a] = rs
	return rs
}

// computeReach runs the two closure BFS passes for one source. It uses
// only local state (plus the graph's immutable caches), so PrecomputeReach
// may call it from parallel workers.
func (x *Extended) computeReach(a int) *reachSets {
	n := len(x.G.Nodes)
	words := (n + 63) / 64
	backing := make([]uint64, 4*words)
	rs := &reachSets{
		any:   cfg.Bitset(backing[0*words : 1*words]),
		msg:   cfg.Bitset(backing[1*words : 2*words]),
		anyNB: cfg.Bitset(backing[2*words : 3*words]),
		msgNB: cfg.Bitset(backing[3*words : 4*words]),
	}
	seen := cfg.NewBitset(2 * n)
	queue := make([]int, 0, 2*n)
	x.closureBFS(a, true, seen, queue, rs.any, rs.msg)
	seen.Zero()
	x.closureBFS(a, false, seen, queue, rs.anyNB, rs.msgNB)
	return rs
}

// closureBFS floods the product graph from (a, no-message-yet) and writes
// the node projections of the visited states into any (either product
// state) and msg (the used-a-message-edge state).
func (x *Extended) closureBFS(a int, allowBack bool, seen cfg.Bitset, queue []int, anySet, msgSet cfg.Bitset) {
	g := x.G
	start := a << 1
	seen.Set(start)
	queue = append(queue[:0], start)
	anySet.Set(a)
	for qi := 0; qi < len(queue); qi++ {
		st := queue[qi]
		node, msg := st>>1, st&1
		for _, e := range g.Succs(node) {
			if !allowBack && g.IsBackEdge(e) {
				continue
			}
			nst := e.To<<1 | msg
			if !seen.Has(nst) {
				seen.Set(nst)
				anySet.Set(e.To)
				if msg == 1 {
					msgSet.Set(e.To)
				}
				queue = append(queue, nst)
			}
		}
		for _, r := range x.msgFrom[node] {
			nst := r<<1 | 1
			if !seen.Has(nst) {
				seen.Set(nst)
				anySet.Set(r)
				msgSet.Set(r)
				queue = append(queue, nst)
			}
		}
	}
}

// CausallyReaches reports whether a causal path (≥1 message edge) from a
// to b exists — FindCausalPath(a, b) != nil, answered from the memoized
// closure without a per-pair search.
func (x *Extended) CausallyReaches(a, b int) bool {
	return x.reachFor(a).msg.Has(b)
}

// CausalNeedsBack reports whether every causal path from a to b traverses
// a backward control edge. Only meaningful when CausallyReaches(a, b).
func (x *Extended) CausalNeedsBack(a, b int) bool {
	return !x.reachFor(a).msgNB.Has(b)
}

// ReachableExtended returns the set of nodes reachable from a via control
// and message edges, message-edge use not required (including a itself).
// With acyclic set, backward control edges are excluded — reachability
// within a single "iteration unrolling", the notion Phase III's
// loop-preservation mode uses. The returned bitset is the memoized cache
// entry; callers must not modify it.
func (x *Extended) ReachableExtended(a int, acyclic bool) cfg.Bitset {
	rs := x.reachFor(a)
	if acyclic {
		return rs.anyNB
	}
	return rs.any
}

// reachJob is one source's pre-carved closure buffers: the arena is not
// concurrent-safe, so PrecomputeReach carves serially and the workers only
// fill disjoint buffers.
type reachJob struct {
	src   int
	rs    *reachSets
	seen  cfg.Bitset
	queue []int
}

// PrecomputeReach fills the closure cache for the given source nodes,
// fanning the per-source BFS passes across at most workers goroutines
// (par.Workers semantics: 0 = GOMAXPROCS, 1 = serial). Each source's
// closure is deterministic, so the cache — and everything answered from
// it — is identical for every worker count.
func (x *Extended) PrecomputeReach(sources []int, workers int) error {
	n := len(x.G.Nodes)
	if x.reach == nil {
		x.reach = make([]*reachSets, n)
	}
	// Warm the graph's lazy analyses (dominators, back edges) serially so
	// the workers only read.
	x.G.BackEdges()
	missing := 0
	for _, src := range sources {
		if x.reach[src] == nil {
			missing++
		}
	}
	if missing == 0 {
		return nil
	}
	// Below this much BFS work the goroutine fan-out costs more than the
	// closures themselves; run serially (the result is identical either
	// way — closures are keyed by source node, not worker).
	const parallelReachThreshold = 1 << 14
	if workers != 1 && missing*2*n < parallelReachThreshold {
		workers = 1
	}
	if workers == 1 {
		seen := x.arena.Bits(2 * n)
		queue := x.arena.Ints(2 * n)
		slab := x.newReachSlab(missing)
		for _, src := range sources {
			if x.reach[src] != nil {
				continue
			}
			rs := x.carveReach(slab)
			slab = slab[1:]
			seen.Zero()
			x.closureBFS(src, true, seen, queue, rs.any, rs.msg)
			seen.Zero()
			x.closureBFS(src, false, seen, queue, rs.anyNB, rs.msgNB)
			x.reach[src] = rs
		}
		return nil
	}
	slab := x.newReachSlab(missing)
	jobs := make([]reachJob, 0, missing)
	for _, src := range sources {
		if x.reach[src] != nil {
			continue
		}
		rs := x.carveReach(slab)
		slab = slab[1:]
		jobs = append(jobs, reachJob{src: src, rs: rs, seen: x.arena.Bits(2 * n), queue: x.arena.Ints(2 * n)})
		x.reach[src] = rs
	}
	return par.ForEach(context.Background(), workers, jobs, func(_ context.Context, _ int, j reachJob) error {
		x.closureBFS(j.src, true, j.seen, j.queue, j.rs.any, j.rs.msg)
		j.seen.Zero()
		x.closureBFS(j.src, false, j.seen, j.queue, j.rs.anyNB, j.rs.msgNB)
		return nil
	})
}

// newReachSlab allocates k reachSets structs in one block; carveReach
// claims the first entry and carves its four bitsets from the arena.
func (x *Extended) newReachSlab(k int) []reachSets {
	return make([]reachSets, k)
}

func (x *Extended) carveReach(slab []reachSets) *reachSets {
	n := len(x.G.Nodes)
	rs := &slab[0]
	rs.any = x.arena.Bits(n)
	rs.msg = x.arena.Bits(n)
	rs.anyNB = x.arena.Bits(n)
	rs.msgNB = x.arena.Bits(n)
	return rs
}
