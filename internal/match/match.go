// Package match implements Phase II of the paper (§3.2): matching every
// receive node of a program's CFG with its candidate send node(s) and
// adding message edges, producing the extended CFG Ĝ (Algorithm 3.1).
//
// A send can feed a receive when their path attributes (from ID-dependent
// branches) and their destination/source parameters present no
// contradiction — decided exactly by the attr.Solver over bounded process
// counts. Irregular parameters (the paper's data-dependent patterns) match
// liberally. Collective statements (bcast) reduce to send/receive pairs at
// the same node, represented as a self message edge.
//
// The matcher follows the paper's DFS one-to-one rule by default: scanning
// receives in program order, each regular (non-irregular) send is matched
// at most once, mirroring Algorithm 3.1's "if the corresponding send node
// has not yet been matched". This order-respecting pairing is what FIFO
// channels produce at runtime; matching every compatible pair instead
// (Options.Liberal) creates causally-impossible backward edges between
// repeated identical patterns (a later send "feeding" an earlier receive),
// which Phase III can neither satisfy nor repair. As a soundness net for
// Lemma 3.1, any receive left unmatched after the one-to-one pass is
// re-matched liberally against all compatible sends.
//
// Compatibility is decided through precomputed attr.Tables — one per
// communication node, built once per Match call — so the send×receive
// scan performs no expression evaluation (see internal/attr/table.go).
package match

import (
	"fmt"

	"repro/internal/attr"
	"repro/internal/cfg"
	"repro/internal/dataflow"
	"repro/internal/mpl"
)

// MessageEdge is one matched send→receive pair in the extended CFG. For
// bcast nodes Send == Recv (the collective is its own correspondent).
type MessageEdge struct {
	Send int // CFG node id of the send (or bcast) node
	Recv int // CFG node id of the recv (or bcast) node
}

// Extended is the extended CFG Ĝ: the control-flow graph plus message
// edges and the attribute information used to derive them.
type Extended struct {
	G        *cfg.Graph
	Messages []MessageEdge
	// PathAttr holds, indexed by CFG node id, the attribute (conjunction
	// of ID-dependent branch constraints) of the control context the node
	// executes under. Entry/exit nodes hold the nil ("true") predicate.
	PathAttr []attr.Predicate
	// Params holds, indexed by CFG node id, the resolved parameter of
	// send/recv/bcast/reduce nodes (the zero Param elsewhere).
	Params []attr.Param

	msgFrom [][]int // send node id -> recv node ids

	arena   *cfg.Arena      // optional round-scoped scratch source (may be nil)
	scratch *witnessScratch // lazily built; serial use only
	reach   []*reachSets    // memoized per-source causal closures
}

// Options configures the matcher.
type Options struct {
	// Solver decides attribute satisfiability; the zero value uses
	// attr.DefaultSolver.
	Solver attr.Solver
	// Liberal matches every compatible send/receive pair instead of the
	// paper's one-to-one DFS rule. Useful for worst-case analyses; see the
	// package comment for why it is not the default.
	Liberal bool
	// Arena, when non-nil, supplies round-scoped scratch buffers for the
	// path searches over the result. The Extended is then only valid until
	// the arena's next Reset. A nil arena means plain allocation.
	Arena *cfg.Arena
	// Cache, when non-nil, reuses Phase II state across repeated Match
	// calls on successive revisions of one program — Phase III's fixpoint
	// rounds. See RoundCache for the validity contract.
	Cache *RoundCache
}

// RoundCache carries Phase II state across Phase III's fixpoint rounds.
//
// Solver tables are memoized by statement id, which is sound because the
// rounds only add, move, or remove checkpoint statements: communication
// statements keep their path attributes and resolved parameters, and
// checkpoint statements have no tables. Everything else in the cache is
// plain buffer reuse, cleared and recomputed each round (path attributes
// of moved checkpoints DO change, so they are never carried over).
//
// A RoundCache is tied to one program lineage and one solver
// configuration; the Extended built with it is invalidated by the next
// Match call using the same cache. The zero value is ready to use. Not
// safe for concurrent Match calls.
type RoundCache struct {
	attrs      map[int]attr.Predicate
	branchCtx  map[int][2]attr.Predicate // per-branch then/else (or loop-body) context conjunctions
	tables     map[int]*attr.Table       // noTable marks a cached nil (wide-bounds fallback)
	tableSlab  []attr.Table              // shared-backing storage for the cached tables
	tableUsed  int                       // tableSlab entries consumed
	pathAttr   []attr.Predicate
	params     []attr.Param
	msgFrom    [][]int
	nodeTables []*attr.Table
	reach      []*reachSets
	messages   []MessageEdge
	sends      []int
	recvs      []int
}

// grown returns buf resized to n, reusing its backing when possible; all
// n entries are zeroed either way.
func grown[T any](buf []T, n int) []T {
	if cap(buf) >= n {
		buf = buf[:n]
		var zero T
		for i := range buf {
			buf[i] = zero
		}
		return buf
	}
	return make([]T, n)
}

// noTable is the cached-nil sentinel for RoundCache.tables: the solver
// bounds exceeded the table representation, so canMatch falls back to the
// exact enumeration. A sentinel beats a second "present" map.
var noTable = &attr.Table{}

func (o Options) solver() attr.Solver {
	if o.Solver == (attr.Solver{}) {
		return attr.DefaultSolver
	}
	return o.Solver
}

// BuildExtended runs Phase II on a program: constructs the CFG, analyzes
// data flow, computes path attributes, and matches sends with receives.
func BuildExtended(p *mpl.Program, opts Options) (*Extended, error) {
	g, err := cfg.Build(p)
	if err != nil {
		return nil, err
	}
	df := dataflow.Analyze(p)
	return Match(p, g, df, opts)
}

// Match matches sends and receives on an already-built CFG using an
// existing data-flow result.
func Match(p *mpl.Program, g *cfg.Graph, df *dataflow.Result, opts Options) (*Extended, error) {
	n := len(g.Nodes)
	x := &Extended{G: g, arena: opts.Arena}
	var attrs map[int]attr.Predicate
	if c := opts.Cache; c != nil {
		c.pathAttr = grown(c.pathAttr, n)
		c.params = grown(c.params, n)
		c.reach = grown(c.reach, n)
		// msgFrom keeps the per-send inner backings across rounds: entries
		// are truncated, not nilled, so re-appending the round's message
		// edges stops allocating once capacities warm up.
		if cap(c.msgFrom) < n {
			grownOuter := make([][]int, n)
			copy(grownOuter, c.msgFrom)
			c.msgFrom = grownOuter
		}
		c.msgFrom = c.msgFrom[:n]
		for i := range c.msgFrom {
			c.msgFrom[i] = c.msgFrom[i][:0]
		}
		x.PathAttr, x.Params, x.msgFrom, x.reach = c.pathAttr, c.params, c.msgFrom, c.reach
		if c.messages == nil {
			c.messages = make([]MessageEdge, 0, 32)
		}
		x.Messages = c.messages[:0]
		if c.attrs == nil {
			c.attrs = make(map[int]attr.Predicate, p.StmtCount())
			c.branchCtx = make(map[int][2]attr.Predicate)
		} else {
			clear(c.attrs)
		}
		attributesInto(p, df, c.attrs, c.branchCtx)
		attrs = c.attrs
	} else {
		x.PathAttr = make([]attr.Predicate, n)
		x.Params = make([]attr.Param, n)
		x.msgFrom = make([][]int, n)
		// Path attributes from the structured AST: every statement inherits
		// the ID-dependent branch constraints of its enclosing conditionals.
		attrs = Attributes(p, df)
	}
	for _, nd := range g.Nodes {
		if nd.Stmt != nil {
			x.PathAttr[nd.ID] = attrs[nd.Stmt.ID()]
		}
	}
	// Resolved parameters per node.
	for _, nd := range g.Nodes {
		switch nd.Kind {
		case cfg.KindSend, cfg.KindRecv, cfg.KindBcast, cfg.KindReduce:
			param, ok := df.Params[nd.Stmt.ID()]
			if !ok {
				return nil, fmt.Errorf("match: no resolved parameter for %s", nd.Label())
			}
			x.Params[nd.ID] = param
		}
	}

	solver := opts.solver()
	var sends, recvs []int
	if c := opts.Cache; c != nil {
		if c.sends == nil {
			// Presize: growing from nil costs a log₂ ladder of appends on
			// the very first round of every Transform.
			c.sends = make([]int, 0, 16)
			c.recvs = make([]int, 0, 16)
		}
		c.sends = g.AppendNodesOfKind(cfg.KindSend, c.sends[:0])
		c.recvs = g.AppendNodesOfKind(cfg.KindRecv, c.recvs[:0])
		sends, recvs = c.sends, c.recvs
	} else {
		sends = g.NodesOfKind(cfg.KindSend)
		recvs = g.NodesOfKind(cfg.KindRecv)
	}

	// Precompute the per-node satisfiability tables; the pair scan below
	// then runs without a single expression evaluation. Tables are nil
	// when the solver bounds exceed their representation, in which case
	// canMatch falls back to the exact enumeration. With a cache, tables
	// are memoized by statement id across fixpoint rounds (communication
	// statements never move or change attributes during Phase III).
	var tables []*attr.Table
	if c := opts.Cache; c != nil {
		c.nodeTables = grown(c.nodeTables, n)
		tables = c.nodeTables
		if c.tables == nil {
			// One comm statement can be both matched sides (bcast/reduce),
			// so sends+recvs bounds the table count; the slab must never
			// regrow — the map holds pointers into it.
			// Exact size: tableFor runs once per send and once per recv.
			c.tables = make(map[int]*attr.Table, len(sends)+len(recvs))
			c.tableSlab = solver.SlabTables(len(sends) + len(recvs))
		}
	} else {
		tables = make([]*attr.Table, n)
	}
	tableFor := func(node int) *attr.Table {
		if c := opts.Cache; c != nil {
			sid := g.Nodes[node].Stmt.ID()
			if t, ok := c.tables[sid]; ok {
				if t == noTable {
					return nil
				}
				return t
			}
			var t *attr.Table
			if c.tableUsed < len(c.tableSlab) {
				t = &c.tableSlab[c.tableUsed]
				c.tableUsed++
			} else {
				t = &attr.Table{}
			}
			if !solver.TableInto(x.PathAttr[node], x.Params[node], t) {
				c.tables[sid] = noTable
				return nil
			}
			c.tables[sid] = t
			return t
		}
		return solver.Table(x.PathAttr[node], x.Params[node])
	}
	for _, s := range sends {
		tables[s] = tableFor(s)
	}
	for _, r := range recvs {
		tables[r] = tableFor(r)
	}
	canMatch := func(s, r int) bool {
		if st, rt := tables[s], tables[r]; st != nil && rt != nil {
			return attr.CanMatchTables(st, rt)
		}
		return solver.CanMatch(x.PathAttr[s], x.Params[s], x.PathAttr[r], x.Params[r])
	}

	matchedSends := opts.Arena.Bits(n)

	// Algorithm 3.1: scan receives (DFS order ≈ node id order for our
	// structured builder), and for each, find candidate sends whose
	// attributes do not contradict. Regular sends match at most once
	// unless Liberal; irregular endpoints always match freely.
	for _, r := range recvs {
		src := x.Params[r]
		for _, s := range sends {
			dest := x.Params[s]
			if !canMatch(s, r) {
				continue
			}
			if !opts.Liberal && !dest.Wildcard && !src.Wildcard {
				// Regular pair: one-to-one in program order on both sides.
				if matchedSends.Has(s) {
					continue
				}
				matchedSends.Set(s)
				x.addMessage(s, r)
				break
			}
			// Irregular endpoint (or Liberal): match every compatible pair.
			matchedSends.Set(s)
			x.addMessage(s, r)
		}
	}

	// Soundness fallback (Lemma 3.1 requires every receive to be matched
	// with at least its true sender): re-match any receive the one-to-one
	// pass left bare, ignoring the matched-once rule.
	if !opts.Liberal {
		matchedRecvs := opts.Arena.Bits(n)
		for _, m := range x.Messages {
			matchedRecvs.Set(m.Recv)
		}
		for _, r := range recvs {
			if matchedRecvs.Has(r) {
				continue
			}
			for _, s := range sends {
				if canMatch(s, r) {
					x.addMessage(s, r)
				}
			}
		}
	}

	// Collectives: every bcast/reduce node is a matched send/recv pair
	// with itself (bcast: root → all others; reduce: all others → root —
	// either way the causality is between processes at the same
	// statement).
	for _, nd := range g.Nodes {
		if nd.Kind == cfg.KindBcast || nd.Kind == cfg.KindReduce {
			x.addMessage(nd.ID, nd.ID)
		}
	}
	if c := opts.Cache; c != nil {
		// Keep the (possibly grown) message backing for the next round.
		c.messages = x.Messages
	}
	return x, nil
}

func (x *Extended) addMessage(s, r int) {
	x.Messages = append(x.Messages, MessageEdge{Send: s, Recv: r})
	x.msgFrom[s] = append(x.msgFrom[s], r)
}

// MessagesFrom returns the receive nodes matched with send node s.
func (x *Extended) MessagesFrom(s int) []int {
	return append([]int(nil), x.msgFrom[s]...)
}

// MessageEdgesAsCFG converts the message edges to cfg.Edge values for DOT
// rendering.
func (x *Extended) MessageEdgesAsCFG() []cfg.Edge {
	out := make([]cfg.Edge, len(x.Messages))
	for i, m := range x.Messages {
		out[i] = cfg.Edge{From: m.Send, To: m.Recv}
	}
	return out
}

// Attributes computes, for every statement id, the path attribute: the
// conjunction of resolved ID-dependent branch conditions (with polarity)
// of the conditionals enclosing the statement. Non-ID-dependent branches
// are ignored, per the paper's simplification ("we ignore all the non
// ID-dependent branches").
func Attributes(p *mpl.Program, df *dataflow.Result) map[int]attr.Predicate {
	out := make(map[int]attr.Predicate, p.StmtCount())
	attributesInto(p, df, out, nil)
	return out
}

// attributesInto computes Attributes into an existing (cleared) map,
// letting the fixpoint rounds reuse one map's buckets.
//
// The per-statement attribute map must be rebuilt each round — checkpoint
// statements move between branch scopes, changing their path attributes.
// The conjunction PER BRANCH, however, is round-invariant: branch
// statements never move and the data-flow result is shared, so the inner
// context of each ID-dependent While/If is the same predicate every round.
// A non-nil ctxCache memoizes those conjunctions by branch statement id,
// making rounds after the first allocation-free here.
func attributesInto(p *mpl.Program, df *dataflow.Result, out map[int]attr.Predicate, ctxCache map[int][2]attr.Predicate) {
	attrWalk(p.Body, nil, df, out, ctxCache)
}

// attrWalk is attributesInto's recursion as a top-level function — the
// self-capturing closure it used to be escaped to the heap on every
// fixpoint round.
func attrWalk(body []mpl.Stmt, ctx attr.Predicate, df *dataflow.Result, out map[int]attr.Predicate, ctxCache map[int][2]attr.Predicate) {
	for _, s := range body {
		out[s.ID()] = ctx
		switch st := s.(type) {
		case *mpl.While:
			inner := ctx
			if bi := df.Branches[st.ID()]; bi.IDDependent {
				if v, ok := ctxCache[st.ID()]; ok {
					inner = v[0]
				} else {
					inner = ctx.And(attr.Constraint{Cond: bi.Resolved, Want: true})
					if ctxCache != nil {
						ctxCache[st.ID()] = [2]attr.Predicate{inner, nil}
					}
				}
			}
			attrWalk(st.Body, inner, df, out, ctxCache)
		case *mpl.If:
			thenCtx, elseCtx := ctx, ctx
			if bi := df.Branches[st.ID()]; bi.IDDependent {
				if v, ok := ctxCache[st.ID()]; ok {
					thenCtx, elseCtx = v[0], v[1]
				} else {
					thenCtx = ctx.And(attr.Constraint{Cond: bi.Resolved, Want: true})
					elseCtx = ctx.And(attr.Constraint{Cond: bi.Resolved, Want: false})
					if ctxCache != nil {
						ctxCache[st.ID()] = [2]attr.Predicate{thenCtx, elseCtx}
					}
				}
			}
			attrWalk(st.Then, thenCtx, df, out, ctxCache)
			attrWalk(st.Else, elseCtx, df, out, ctxCache)
		}
	}
}
