// Package match implements Phase II of the paper (§3.2): matching every
// receive node of a program's CFG with its candidate send node(s) and
// adding message edges, producing the extended CFG Ĝ (Algorithm 3.1).
//
// A send can feed a receive when their path attributes (from ID-dependent
// branches) and their destination/source parameters present no
// contradiction — decided exactly by the attr.Solver over bounded process
// counts. Irregular parameters (the paper's data-dependent patterns) match
// liberally. Collective statements (bcast) reduce to send/receive pairs at
// the same node, represented as a self message edge.
//
// The matcher follows the paper's DFS one-to-one rule by default: scanning
// receives in program order, each regular (non-irregular) send is matched
// at most once, mirroring Algorithm 3.1's "if the corresponding send node
// has not yet been matched". This order-respecting pairing is what FIFO
// channels produce at runtime; matching every compatible pair instead
// (Options.Liberal) creates causally-impossible backward edges between
// repeated identical patterns (a later send "feeding" an earlier receive),
// which Phase III can neither satisfy nor repair. As a soundness net for
// Lemma 3.1, any receive left unmatched after the one-to-one pass is
// re-matched liberally against all compatible sends.
package match

import (
	"fmt"

	"repro/internal/attr"
	"repro/internal/cfg"
	"repro/internal/dataflow"
	"repro/internal/mpl"
)

// MessageEdge is one matched send→receive pair in the extended CFG. For
// bcast nodes Send == Recv (the collective is its own correspondent).
type MessageEdge struct {
	Send int // CFG node id of the send (or bcast) node
	Recv int // CFG node id of the recv (or bcast) node
}

// Extended is the extended CFG Ĝ: the control-flow graph plus message
// edges and the attribute information used to derive them.
type Extended struct {
	G        *cfg.Graph
	Messages []MessageEdge
	// PathAttr maps every CFG node id to the attribute (conjunction of
	// ID-dependent branch constraints) of the control context it executes
	// under.
	PathAttr map[int]attr.Predicate
	// Params maps send/recv/bcast node ids to their resolved parameter.
	Params map[int]attr.Param

	msgFrom map[int][]int // send node -> recv nodes
}

// Options configures the matcher.
type Options struct {
	// Solver decides attribute satisfiability; the zero value uses
	// attr.DefaultSolver.
	Solver attr.Solver
	// Liberal matches every compatible send/receive pair instead of the
	// paper's one-to-one DFS rule. Useful for worst-case analyses; see the
	// package comment for why it is not the default.
	Liberal bool
}

func (o Options) solver() attr.Solver {
	if o.Solver == (attr.Solver{}) {
		return attr.DefaultSolver
	}
	return o.Solver
}

// BuildExtended runs Phase II on a program: constructs the CFG, analyzes
// data flow, computes path attributes, and matches sends with receives.
func BuildExtended(p *mpl.Program, opts Options) (*Extended, error) {
	g, err := cfg.Build(p)
	if err != nil {
		return nil, err
	}
	df := dataflow.Analyze(p)
	return Match(p, g, df, opts)
}

// Match matches sends and receives on an already-built CFG using an
// existing data-flow result.
func Match(p *mpl.Program, g *cfg.Graph, df *dataflow.Result, opts Options) (*Extended, error) {
	x := &Extended{
		G:        g,
		PathAttr: make(map[int]attr.Predicate, len(g.Nodes)),
		Params:   make(map[int]attr.Param),
		msgFrom:  make(map[int][]int),
	}
	// Path attributes from the structured AST: every statement inherits
	// the ID-dependent branch constraints of its enclosing conditionals.
	attrs := Attributes(p, df)
	for _, n := range g.Nodes {
		if n.Stmt != nil {
			x.PathAttr[n.ID] = attrs[n.Stmt.ID()]
		}
	}
	// Resolved parameters per node.
	for _, n := range g.Nodes {
		switch n.Kind {
		case cfg.KindSend, cfg.KindRecv, cfg.KindBcast, cfg.KindReduce:
			param, ok := df.Params[n.Stmt.ID()]
			if !ok {
				return nil, fmt.Errorf("match: no resolved parameter for %s", n.Label)
			}
			x.Params[n.ID] = param
		}
	}

	solver := opts.solver()
	sends := g.NodesOfKind(cfg.KindSend)
	recvs := g.NodesOfKind(cfg.KindRecv)
	matchedSends := make(map[int]bool)

	// Algorithm 3.1: scan receives (DFS order ≈ node id order for our
	// structured builder), and for each, find candidate sends whose
	// attributes do not contradict. Regular sends match at most once
	// unless Liberal; irregular endpoints always match freely.
	for _, r := range recvs {
		recvPath := x.PathAttr[r]
		src := x.Params[r]
		for _, s := range sends {
			sendPath := x.PathAttr[s]
			dest := x.Params[s]
			if !solver.CanMatch(sendPath, dest, recvPath, src) {
				continue
			}
			if !opts.Liberal && !dest.Wildcard && !src.Wildcard {
				// Regular pair: one-to-one in program order on both sides.
				if matchedSends[s] {
					continue
				}
				matchedSends[s] = true
				x.addMessage(s, r)
				break
			}
			// Irregular endpoint (or Liberal): match every compatible pair.
			matchedSends[s] = true
			x.addMessage(s, r)
		}
	}

	// Soundness fallback (Lemma 3.1 requires every receive to be matched
	// with at least its true sender): re-match any receive the one-to-one
	// pass left bare, ignoring the matched-once rule.
	if !opts.Liberal {
		matchedRecvs := make(map[int]bool, len(x.Messages))
		for _, m := range x.Messages {
			matchedRecvs[m.Recv] = true
		}
		for _, r := range recvs {
			if matchedRecvs[r] {
				continue
			}
			for _, s := range sends {
				if solver.CanMatch(x.PathAttr[s], x.Params[s], x.PathAttr[r], x.Params[r]) {
					x.addMessage(s, r)
				}
			}
		}
	}

	// Collectives: every bcast/reduce node is a matched send/recv pair
	// with itself (bcast: root → all others; reduce: all others → root —
	// either way the causality is between processes at the same
	// statement).
	for _, b := range g.NodesOfKind(cfg.KindBcast) {
		x.addMessage(b, b)
	}
	for _, r := range g.NodesOfKind(cfg.KindReduce) {
		x.addMessage(r, r)
	}
	return x, nil
}

func (x *Extended) addMessage(s, r int) {
	x.Messages = append(x.Messages, MessageEdge{Send: s, Recv: r})
	x.msgFrom[s] = append(x.msgFrom[s], r)
}

// MessagesFrom returns the receive nodes matched with send node s.
func (x *Extended) MessagesFrom(s int) []int {
	return append([]int(nil), x.msgFrom[s]...)
}

// MessageEdgesAsCFG converts the message edges to cfg.Edge values for DOT
// rendering.
func (x *Extended) MessageEdgesAsCFG() []cfg.Edge {
	out := make([]cfg.Edge, len(x.Messages))
	for i, m := range x.Messages {
		out[i] = cfg.Edge{From: m.Send, To: m.Recv}
	}
	return out
}

// Attributes computes, for every statement id, the path attribute: the
// conjunction of resolved ID-dependent branch conditions (with polarity)
// of the conditionals enclosing the statement. Non-ID-dependent branches
// are ignored, per the paper's simplification ("we ignore all the non
// ID-dependent branches").
func Attributes(p *mpl.Program, df *dataflow.Result) map[int]attr.Predicate {
	out := make(map[int]attr.Predicate, p.StmtCount())
	var walk func(body []mpl.Stmt, ctx attr.Predicate)
	walk = func(body []mpl.Stmt, ctx attr.Predicate) {
		for _, s := range body {
			out[s.ID()] = ctx
			switch st := s.(type) {
			case *mpl.While:
				inner := ctx
				if bi := df.Branches[st.ID()]; bi.IDDependent {
					inner = ctx.And(attr.Constraint{Cond: bi.Resolved, Want: true})
				}
				walk(st.Body, inner)
			case *mpl.If:
				thenCtx, elseCtx := ctx, ctx
				if bi := df.Branches[st.ID()]; bi.IDDependent {
					thenCtx = ctx.And(attr.Constraint{Cond: bi.Resolved, Want: true})
					elseCtx = ctx.And(attr.Constraint{Cond: bi.Resolved, Want: false})
				}
				walk(st.Then, thenCtx)
				walk(st.Else, elseCtx)
			}
		}
	}
	walk(p.Body, nil)
	return out
}
