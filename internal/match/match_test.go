package match

import (
	"testing"

	"repro/internal/attr"
	"repro/internal/cfg"
	"repro/internal/corpus"
	"repro/internal/dataflow"
	"repro/internal/mpl"
)

func buildExt(t *testing.T, p *mpl.Program, opts Options) *Extended {
	t.Helper()
	x, err := BuildExtended(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

// nodeOf returns the single CFG node of the given kind satisfying pred.
func nodesOf(x *Extended, kind cfg.NodeKind) []int {
	return x.G.NodesOfKind(kind)
}

func hasEdge(x *Extended, s, r int) bool {
	for _, m := range x.Messages {
		if m.Send == s && m.Recv == r {
			return true
		}
	}
	return false
}

func TestAttributesJacobiFig2(t *testing.T) {
	p := corpus.JacobiFig2(2)
	df := dataflow.Analyze(p)
	attrs := Attributes(p, df)
	// Find the statements in the two branches.
	var evenSend, oddSend *mpl.Send
	mpl.Walk(p.Body, func(s mpl.Stmt) bool {
		if snd, ok := s.(*mpl.Send); ok {
			if evenSend == nil {
				evenSend = snd
			} else if oddSend == nil {
				oddSend = snd
			}
		}
		return true
	})
	evenPred := attrs[evenSend.ID()]
	oddPred := attrs[oddSend.ID()]
	if len(evenPred) != 1 || !evenPred[0].Want {
		t.Errorf("even path attribute = %v", evenPred)
	}
	if len(oddPred) != 1 || oddPred[0].Want {
		t.Errorf("odd path attribute = %v", oddPred)
	}
	if !evenPred.HoldsAt(2, 4) || evenPred.HoldsAt(3, 4) {
		t.Error("even attribute evaluates wrong")
	}
	// Statements outside the if carry no ID-dependent constraints.
	topAttr := attrs[p.Body[0].ID()]
	if len(topAttr) != 0 {
		t.Errorf("top-level attribute = %v, want empty", topAttr)
	}
}

func TestMatchJacobiFig2(t *testing.T) {
	x := buildExt(t, corpus.JacobiFig2(2), Options{})
	sends := nodesOf(x, cfg.KindSend)
	recvs := nodesOf(x, cfg.KindRecv)
	if len(sends) != 2 || len(recvs) != 2 {
		t.Fatalf("sends=%v recvs=%v", sends, recvs)
	}
	// Builder order: even branch first (send then recv), odd branch second
	// (recv then send).
	evenSend, oddSend := sends[0], sends[1]
	evenRecv, oddRecv := recvs[0], recvs[1]
	if evenSend > evenRecv {
		t.Fatalf("node order assumption broken: %v %v", sends, recvs)
	}
	if !hasEdge(x, evenSend, oddRecv) {
		t.Error("even send must match odd recv")
	}
	if !hasEdge(x, oddSend, evenRecv) {
		t.Error("odd send must match even recv")
	}
	if hasEdge(x, evenSend, evenRecv) {
		t.Error("even send cannot match even recv (parity contradiction)")
	}
	if hasEdge(x, oddSend, oddRecv) {
		t.Error("odd send cannot match odd recv (parity contradiction)")
	}
	if len(x.Messages) != 2 {
		t.Errorf("messages = %v, want exactly 2", x.Messages)
	}
}

func TestMatchJacobiFig1(t *testing.T) {
	x := buildExt(t, corpus.JacobiFig1(2), Options{})
	sends := nodesOf(x, cfg.KindSend)
	recvs := nodesOf(x, cfg.KindRecv)
	if len(sends) != 2 || len(recvs) != 2 {
		t.Fatalf("sends=%v recvs=%v", sends, recvs)
	}
	leftSend, rightSend := sends[0], sends[1] // send(rank-1), send(rank+1)
	leftRecv, rightRecv := recvs[0], recvs[1] // recv(rank-1), recv(rank+1)
	// send(rank-1) is received by the left neighbor as coming from its
	// rank+1 side.
	if !hasEdge(x, leftSend, rightRecv) {
		t.Error("send(rank-1) must match recv(rank+1)")
	}
	if !hasEdge(x, rightSend, leftRecv) {
		t.Error("send(rank+1) must match recv(rank-1)")
	}
	if hasEdge(x, leftSend, leftRecv) {
		t.Error("send(rank-1) cannot match recv(rank-1)")
	}
	if hasEdge(x, rightSend, rightRecv) {
		t.Error("send(rank+1) cannot match recv(rank+1)")
	}
}

func TestMatchIrregularIsLiberal(t *testing.T) {
	x := buildExt(t, corpus.Irregular(), Options{})
	sends := nodesOf(x, cfg.KindSend)
	recvs := nodesOf(x, cfg.KindRecv)
	if len(sends) != 1 || len(recvs) != 1 {
		t.Fatalf("sends=%v recvs=%v", sends, recvs)
	}
	if !hasEdge(x, sends[0], recvs[0]) {
		t.Error("irregular send must match the receive")
	}
	if !x.Params[sends[0]].Wildcard {
		t.Error("irregular send parameter should be wildcard")
	}
}

func TestMatchBcastSelfEdge(t *testing.T) {
	x := buildExt(t, corpus.MasterWorker(1), Options{})
	bcasts := nodesOf(x, cfg.KindBcast)
	if len(bcasts) != 1 {
		t.Fatalf("bcasts = %v", bcasts)
	}
	if !hasEdge(x, bcasts[0], bcasts[0]) {
		t.Error("bcast must carry a self message edge")
	}
}

func TestMatchFaithfulOneToOne(t *testing.T) {
	// Two sends could both feed one receive; the default (paper-faithful)
	// mode matches each regular send only once, in program order.
	src := `
program multi
var x
proc {
    if rank == 0 {
        send(1, x)
        send(1, x)
    } else {
        recv(0, x)
        recv(0, x)
    }
}
`
	p, err := mpl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	faithful := buildExt(t, p, Options{})
	liberal := buildExt(t, p, Options{Liberal: true})
	if len(liberal.Messages) != 4 {
		t.Errorf("liberal matches = %d, want 4 (all pairs)", len(liberal.Messages))
	}
	if len(faithful.Messages) != 2 {
		t.Errorf("faithful matches = %d, want 2 (one per send)", len(faithful.Messages))
	}
	// Order-respecting pairing: send k ↔ recv k.
	sends := nodesOf(faithful, cfg.KindSend)
	recvs := nodesOf(faithful, cfg.KindRecv)
	if !hasEdge(faithful, sends[0], recvs[0]) || !hasEdge(faithful, sends[1], recvs[1]) {
		t.Errorf("pairing not in order: %+v", faithful.Messages)
	}
}

func TestMatchNoFalseBackwardEdges(t *testing.T) {
	// Two identical exchange motifs in sequence: FIFO order means motif
	// 2's send can never feed motif 1's receive. The default matcher must
	// not create such an edge (liberal mode does, by design).
	src := `
program twomotif
var a, tmp
proc {
    if rank % 2 == 0 {
        send(rank + 1, a)
        recv(rank + 1, tmp)
    } else {
        recv(rank - 1, tmp)
        send(rank - 1, a)
    }
    if rank % 2 == 0 {
        send(rank + 1, a)
        recv(rank + 1, tmp)
    } else {
        recv(rank - 1, tmp)
        send(rank - 1, a)
    }
}
`
	p, err := mpl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	x := buildExt(t, p, Options{})
	sends := nodesOf(x, cfg.KindSend)
	recvs := nodesOf(x, cfg.KindRecv)
	if len(sends) != 4 || len(recvs) != 4 {
		t.Fatalf("sends=%v recvs=%v", sends, recvs)
	}
	// The two if statements split the graph into motif 1 and motif 2;
	// any edge from a motif-2 send to a motif-1 recv is a false backward
	// edge (FIFO makes it impossible at runtime).
	branches := x.G.NodesOfKind(cfg.KindBranch)
	if len(branches) != 2 {
		t.Fatalf("branches = %v", branches)
	}
	motif2Start := branches[1]
	for _, m := range x.Messages {
		if m.Send > motif2Start && m.Recv < motif2Start {
			t.Errorf("false backward edge: send node %d -> recv node %d", m.Send, m.Recv)
		}
	}
	if len(x.Messages) != 4 {
		t.Errorf("messages = %d, want 4 (one per send)", len(x.Messages))
	}
	liberal := buildExt(t, p, Options{Liberal: true})
	if len(liberal.Messages) <= 4 {
		t.Errorf("liberal should over-match: %d edges", len(liberal.Messages))
	}
}

func TestMatchUnmatchedRecvFallback(t *testing.T) {
	// One send statement feeds two different receive statements (the
	// one-to-one pass would leave the second bare); the fallback must
	// still match it so Lemma 3.1's guarantee holds.
	src := `
program fan
var x
proc {
    if rank == 0 {
        send(1, x)
    } else {
        recv(0, x)
        recv(0, x)
    }
}
`
	p, err := mpl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	x := buildExt(t, p, Options{})
	recvs := nodesOf(x, cfg.KindRecv)
	inbound := map[int]int{}
	for _, m := range x.Messages {
		inbound[m.Recv]++
	}
	for _, r := range recvs {
		if inbound[r] == 0 {
			t.Errorf("recv node %d left unmatched", r)
		}
	}
}

func TestCausalPathJacobiFig2(t *testing.T) {
	p := corpus.JacobiFig2(2)
	x := buildExt(t, p, Options{})
	chks := nodesOf(x, cfg.KindChkpt)
	if len(chks) != 2 {
		t.Fatalf("chkpts = %v", chks)
	}
	evenChk, oddChk := chks[0], chks[1]
	// Even checkpoints before sending; odd checkpoints after receiving:
	// a back-edge-free causal path even→odd must exist.
	fwd := x.FindCausalPath(evenChk, oddChk)
	if fwd == nil {
		t.Fatal("no causal path even→odd checkpoint")
	}
	if fwd.HasBackEdge {
		t.Errorf("even→odd path should not need a back edge: %v", fwd.Nodes)
	}
	msgCount := 0
	for _, s := range fwd.Steps {
		if s.IsMessage {
			msgCount++
		}
	}
	if msgCount == 0 {
		t.Error("causal path must use a message edge")
	}
	// odd→even causality exists only across loop iterations (back edge).
	rev := x.FindCausalPath(oddChk, evenChk)
	if rev == nil {
		t.Fatal("no causal path odd→even checkpoint (expected one via loop)")
	}
	if !rev.HasBackEdge {
		t.Errorf("odd→even path must traverse a back edge: %v", rev.Nodes)
	}
}

func TestCausalPathRequiresMessage(t *testing.T) {
	// Program with checkpoints on both branches but NO messages at all: no
	// causal path may be reported even though control paths exist.
	src := `
program nomsg
var x
proc {
    if rank % 2 == 0 {
        chkpt
    } else {
        chkpt
    }
    x = 1
}
`
	p, err := mpl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	x := buildExt(t, p, Options{})
	chks := nodesOf(x, cfg.KindChkpt)
	if got := x.FindCausalPath(chks[0], chks[1]); got != nil {
		t.Errorf("message-free program has causal path: %v", got.Nodes)
	}
}

func TestCausalPathSelfViaLoop(t *testing.T) {
	// A checkpoint inside a messaging loop reaches itself causally across
	// iterations (via the back edge).
	p := corpus.JacobiFig1(2)
	x := buildExt(t, p, Options{})
	chk := nodesOf(x, cfg.KindChkpt)[0]
	got := x.FindCausalPath(chk, chk)
	if got == nil {
		t.Fatal("no self causal path through loop")
	}
	if !got.HasBackEdge {
		t.Error("self path must use the loop back edge")
	}
	if !got.ContainsNode(chk) {
		t.Error("path must contain the checkpoint")
	}
}

func TestMatchSolverBoundsRespected(t *testing.T) {
	// With MaxProcs=2 a destination of rank+2 can never land in range.
	src := `
program far
var x
proc {
    if rank == 0 {
        send(rank + 2, x)
    } else {
        recv(rank - 2, x)
    }
}
`
	p, err := mpl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	narrow := buildExt(t, p, Options{Solver: attr.Solver{MinProcs: 2, MaxProcs: 2}})
	if len(narrow.Messages) != 0 {
		t.Errorf("narrow solver matched %v", narrow.Messages)
	}
	wide := buildExt(t, p, Options{Solver: attr.Solver{MinProcs: 2, MaxProcs: 8}})
	if len(wide.Messages) != 1 {
		t.Errorf("wide solver matches = %v, want 1", wide.Messages)
	}
}

func TestMessageEdgesAsCFG(t *testing.T) {
	x := buildExt(t, corpus.JacobiFig2(1), Options{})
	edges := x.MessageEdgesAsCFG()
	if len(edges) != len(x.Messages) {
		t.Fatalf("converted %d edges, want %d", len(edges), len(x.Messages))
	}
	dot := x.G.DOT("test", edges)
	if dot == "" {
		t.Fatal("empty DOT")
	}
}

func TestAllCorpusMatches(t *testing.T) {
	for name, p := range corpus.All() {
		t.Run(name, func(t *testing.T) {
			x := buildExt(t, p, Options{})
			// Every recv should have at least one incoming message edge
			// (Lemma 3.1: the true correspondent is among the matches) —
			// in our corpus every receive is really fed by some send.
			inbound := make(map[int]int)
			for _, m := range x.Messages {
				inbound[m.Recv]++
			}
			for _, r := range nodesOf(x, cfg.KindRecv) {
				if inbound[r] == 0 {
					t.Errorf("recv node %d (%s) unmatched", r, x.G.Nodes[r].Label())
				}
			}
		})
	}
}

func BenchmarkBuildExtendedJacobi(b *testing.B) {
	p := corpus.JacobiFig2(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BuildExtended(p, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFindCausalPath(b *testing.B) {
	p := corpus.JacobiFig2(3)
	x, err := BuildExtended(p, Options{})
	if err != nil {
		b.Fatal(err)
	}
	chks := x.G.NodesOfKind(cfg.KindChkpt)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if x.FindCausalPath(chks[0], chks[1]) == nil {
			b.Fatal("no path")
		}
	}
}
