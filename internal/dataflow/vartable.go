package dataflow

import "repro/internal/mpl"

// VarTable is the dense variable indexing the analyses share: every
// declared variable (in declaration order) plus every undeclared
// assignment/receive target reachable in the body (possible in hand-built
// test programs that skip mpl.Check). The forward rank analysis uses it for
// its abstract state slots; the backward liveness analysis
// (internal/liveness) uses the same table so both passes agree on the
// variable universe.
//
// Constants, rank, nproc, and input(...) are not variables and get no
// slots.
type VarTable struct {
	Index map[string]int // name -> dense slot
	Names []string       // slot -> name
}

// NewVarTable builds the table for a program.
func NewVarTable(p *mpl.Program) *VarTable {
	t := &VarTable{Index: make(map[string]int, len(p.Vars))}
	for _, v := range p.Vars {
		t.Slot(v)
	}
	t.collectTargets(p.Body)
	return t
}

// Len returns the number of slots.
func (t *VarTable) Len() int { return len(t.Names) }

// Slot returns the slot for a variable name, assigning one if new.
func (t *VarTable) Slot(name string) int {
	if i, ok := t.Index[name]; ok {
		return i
	}
	i := len(t.Names)
	t.Index[name] = i
	t.Names = append(t.Names, name)
	return i
}

// collectTargets assigns slots to undeclared assignment/receive targets so
// the dense state is total.
func (t *VarTable) collectTargets(body []mpl.Stmt) {
	for _, st := range body {
		switch n := st.(type) {
		case *mpl.Assign:
			t.Slot(n.Name)
		case *mpl.Recv:
			t.Slot(n.Var)
		case *mpl.Bcast:
			t.Slot(n.Var)
		case *mpl.Reduce:
			t.Slot(n.Var)
		case *mpl.If:
			t.collectTargets(n.Then)
			t.collectTargets(n.Else)
		case *mpl.While:
			t.collectTargets(n.Body)
		}
	}
}
