package dataflow

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/mpl"
)

func mustParse(t *testing.T, src string) *mpl.Program {
	t.Helper()
	p, err := mpl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// firstStmt returns the first statement of type T found pre-order.
func findStmts[T mpl.Stmt](p *mpl.Program) []T {
	var out []T
	mpl.Walk(p.Body, func(s mpl.Stmt) bool {
		if t, ok := s.(T); ok {
			out = append(out, t)
		}
		return true
	})
	return out
}

func TestDirectRankParams(t *testing.T) {
	p := mustParse(t, `
program direct
var x
proc {
    send(rank + 1, x)
    recv(rank - 1, x)
}
`)
	r := Analyze(p)
	sends := findStmts[*mpl.Send](p)
	recvs := findStmts[*mpl.Recv](p)
	if got := r.Params[sends[0].ID()]; got.Wildcard || mpl.ExprString(got.Expr) != "rank + 1" {
		t.Errorf("send param = %v", got)
	}
	if got := r.Params[recvs[0].ID()]; got.Wildcard || mpl.ExprString(got.Expr) != "rank - 1" {
		t.Errorf("recv param = %v", got)
	}
}

func TestVariablePropagation(t *testing.T) {
	p := mustParse(t, `
program prop
const OFF = 2
var right, x
proc {
    right = rank + OFF
    send(right, x)
}
`)
	r := Analyze(p)
	s := findStmts[*mpl.Send](p)[0]
	got := r.Params[s.ID()]
	if got.Wildcard {
		t.Fatal("propagated param widened to wildcard")
	}
	if mpl.ExprString(got.Expr) != "rank + 2" {
		t.Errorf("resolved = %q, want \"rank + 2\"", mpl.ExprString(got.Expr))
	}
}

func TestInputIsIrregular(t *testing.T) {
	p := corpus.Irregular()
	r := Analyze(p)
	sends := findStmts[*mpl.Send](p)
	if got := r.Params[sends[0].ID()]; !got.Wildcard {
		t.Errorf("input-derived destination should be wildcard, got %v", got)
	}
	// The receive's source (literal 0) stays precise.
	recvs := findStmts[*mpl.Recv](p)
	if got := r.Params[recvs[0].ID()]; got.Wildcard || mpl.ExprString(got.Expr) != "0" {
		t.Errorf("recv param = %v", got)
	}
}

func TestReceivedValueIsUnknown(t *testing.T) {
	p := mustParse(t, `
program taint
var peer, x
proc {
    recv(0, peer)
    send(peer, x)
}
`)
	r := Analyze(p)
	s := findStmts[*mpl.Send](p)[0]
	if got := r.Params[s.ID()]; !got.Wildcard {
		t.Errorf("destination from received value should be wildcard, got %v", got)
	}
}

func TestIDDependentBranches(t *testing.T) {
	p := corpus.JacobiFig2(3)
	r := Analyze(p)
	whiles := findStmts[*mpl.While](p)
	ifs := findStmts[*mpl.If](p)
	if len(whiles) != 1 || len(ifs) != 1 {
		t.Fatalf("whiles=%d ifs=%d", len(whiles), len(ifs))
	}
	if bi := r.Branches[whiles[0].ID()]; bi.IDDependent {
		t.Error("loop counter condition must not be ID-dependent")
	}
	bi := r.Branches[ifs[0].ID()]
	if !bi.IDDependent {
		t.Fatal("rank parity condition must be ID-dependent")
	}
	if mpl.ExprString(bi.Resolved) != "rank % 2 == 0" {
		t.Errorf("resolved cond = %q", mpl.ExprString(bi.Resolved))
	}
}

func TestIDDependenceThroughVariable(t *testing.T) {
	p := mustParse(t, `
program indirect
var parity, x
proc {
    parity = rank % 2
    if parity == 0 {
        send(rank + 1, x)
    } else {
        recv(rank - 1, x)
    }
}
`)
	r := Analyze(p)
	ifs := findStmts[*mpl.If](p)[0]
	bi := r.Branches[ifs.ID()]
	if !bi.IDDependent {
		t.Fatal("condition via rank-derived variable must be ID-dependent")
	}
	if mpl.ExprString(bi.Resolved) != "rank % 2 == 0" {
		t.Errorf("resolved = %q", mpl.ExprString(bi.Resolved))
	}
}

func TestLoopWidensModifiedVars(t *testing.T) {
	p := mustParse(t, `
program widen
var i, x
proc {
    i = rank
    while i < 10 {
        send(i, x)
        i = i + 1
    }
}
`)
	r := Analyze(p)
	s := findStmts[*mpl.Send](p)[0]
	// i changes across iterations: the destination must widen to wildcard.
	if got := r.Params[s.ID()]; !got.Wildcard {
		t.Errorf("loop-varying destination should be wildcard, got %v", got)
	}
	w := findStmts[*mpl.While](p)[0]
	if bi := r.Branches[w.ID()]; bi.IDDependent {
		t.Error("widened loop condition must not be ID-dependent")
	}
}

func TestLoopInvariantStaysPrecise(t *testing.T) {
	p := mustParse(t, `
program inv
var right, i, x
proc {
    right = rank + 1
    i = 0
    while i < 10 {
        send(right, x)
        i = i + 1
    }
}
`)
	r := Analyze(p)
	s := findStmts[*mpl.Send](p)[0]
	got := r.Params[s.ID()]
	if got.Wildcard || mpl.ExprString(got.Expr) != "rank + 1" {
		t.Errorf("loop-invariant destination = %v, want rank + 1", got)
	}
}

func TestJoinConflictingAssignsWidens(t *testing.T) {
	p := mustParse(t, `
program conflict
var d, x
proc {
    if rank == 0 {
        d = 1
    } else {
        d = 2
    }
    send(d, x)
}
`)
	r := Analyze(p)
	s := findStmts[*mpl.Send](p)[0]
	if got := r.Params[s.ID()]; !got.Wildcard {
		t.Errorf("join-conflicting destination should be wildcard, got %v", got)
	}
}

func TestJoinAgreeingAssignsStaysPrecise(t *testing.T) {
	p := mustParse(t, `
program agree
var d, x
proc {
    if rank == 0 {
        d = rank + 1
    } else {
        d = rank + 1
    }
    send(d, x)
}
`)
	r := Analyze(p)
	s := findStmts[*mpl.Send](p)[0]
	got := r.Params[s.ID()]
	if got.Wildcard || mpl.ExprString(got.Expr) != "rank + 1" {
		t.Errorf("agreeing join = %v, want rank + 1", got)
	}
}

func TestBcastRootResolved(t *testing.T) {
	p := corpus.MasterWorker(2)
	r := Analyze(p)
	bcasts := findStmts[*mpl.Bcast](p)
	if len(bcasts) != 1 {
		t.Fatalf("bcasts = %d", len(bcasts))
	}
	got := r.Params[bcasts[0].ID()]
	if got.Wildcard || mpl.ExprString(got.Expr) != "0" {
		t.Errorf("bcast root = %v, want 0", got)
	}
}

func TestAllCorpusAnalyzes(t *testing.T) {
	for name, p := range corpus.All() {
		t.Run(name, func(t *testing.T) {
			r := Analyze(p)
			// Every send/recv/bcast must have a recorded param.
			mpl.Walk(p.Body, func(s mpl.Stmt) bool {
				switch s.(type) {
				case *mpl.Send, *mpl.Recv, *mpl.Bcast:
					if _, ok := r.Params[s.ID()]; !ok {
						t.Errorf("no param recorded for %s", mpl.DescribeStmt(s))
					}
				case *mpl.If, *mpl.While:
					if _, ok := r.Branches[s.ID()]; !ok {
						t.Errorf("no branch info for %s", mpl.DescribeStmt(s))
					}
				}
				return true
			})
		})
	}
}

func BenchmarkAnalyzeJacobi(b *testing.B) {
	p := corpus.JacobiFig2(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Analyze(p)
	}
}
