// Package dataflow performs the rank data-flow analysis of the paper's
// §3.2: "we first determine the variables and constants that depend on
// process IDs, and then use the technique of data flow analysis to
// determine whether each condition expression is ID-dependent or not."
//
// The analysis is a forward abstract interpretation over the structured MPL
// AST. Each variable's abstract value is either a closed symbolic
// expression over (rank, nproc) — meaning the variable's concrete value is
// that expression for every execution — or unknown (⊤). Values received in
// messages, read from input data, or merged inconsistently at joins are ⊤.
// From the fixpoint the analysis derives, per communication statement, the
// resolved destination/source parameter (a closed expression, or the
// wildcard for the paper's irregular patterns), and per branch statement
// whether its condition is ID-dependent together with the resolved
// condition.
package dataflow

import (
	"repro/internal/attr"
	"repro/internal/mpl"
)

// BranchInfo describes one branch (if/while) statement.
type BranchInfo struct {
	// Resolved is the condition as a closed expression over (rank, nproc);
	// nil when the condition is not statically resolvable.
	Resolved mpl.Expr
	// IDDependent reports whether the condition is resolvable and actually
	// mentions rank — the paper's ID-dependent branches. Only these
	// contribute path attributes.
	IDDependent bool
}

// Result holds the analysis outcome.
type Result struct {
	// Params maps send/recv/bcast statement ids to their resolved
	// destination/source/root parameter.
	Params map[int]attr.Param
	// Branches maps if/while statement ids to branch information.
	Branches map[int]BranchInfo
}

// maxExprSize bounds substituted expressions; larger results widen to ⊤.
// Rank arithmetic in real SPMD code is tiny; the bound only guards against
// pathological self-referential growth inside loops.
const maxExprSize = 64

// state maps variable names to abstract values; a nil Expr means ⊤. Missing
// variables are implicitly the literal 0 (MPL variables start at zero).
type state map[string]mpl.Expr

func (s state) clone() state {
	c := make(state, len(s))
	for k, v := range s {
		c[k] = v // abstract values are immutable; sharing is fine
	}
	return c
}

// join merges two states in place into s: variables whose abstract values
// differ become ⊤.
func (s state) join(o state) {
	for k, v := range o {
		cur, ok := s[k]
		if !ok {
			s[k] = v
			continue
		}
		if !sameAbstract(cur, v) {
			s[k] = nil
		}
	}
	for k := range s {
		if _, ok := o[k]; !ok {
			// Present in s only; o implicitly has the declaration-time
			// value. Differ unless equal to the implicit zero.
			if !sameAbstract(s[k], zeroLit) {
				s[k] = nil
			}
		}
	}
}

var zeroLit mpl.Expr = mpl.Int(0)

func sameAbstract(a, b mpl.Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return mpl.ExprString(a) == mpl.ExprString(b)
}

func (s state) equal(o state) bool {
	if len(s) != len(o) {
		// Compare semantically: missing == zero literal.
		for k := range s {
			if !sameAbstract(s.get(k), o.get(k)) {
				return false
			}
		}
		for k := range o {
			if !sameAbstract(s.get(k), o.get(k)) {
				return false
			}
		}
		return true
	}
	for k := range s {
		if !sameAbstract(s.get(k), o.get(k)) {
			return false
		}
	}
	return true
}

func (s state) get(name string) mpl.Expr {
	if v, ok := s[name]; ok {
		return v
	}
	return zeroLit
}

// analyzer carries the program context and the accumulated records.
type analyzer struct {
	consts map[string]int
	res    *Result
}

// Analyze runs the analysis on a program.
func Analyze(p *mpl.Program) *Result {
	a := &analyzer{
		consts: make(map[string]int, len(p.Consts)),
		res: &Result{
			Params:   make(map[int]attr.Param),
			Branches: make(map[int]BranchInfo),
		},
	}
	for _, c := range p.Consts {
		a.consts[c.Name] = c.Value
	}
	init := make(state, len(p.Vars))
	for _, v := range p.Vars {
		init[v] = zeroLit
	}
	a.body(p.Body, init)
	return a.res
}

// exprSize counts expression nodes.
func exprSize(e mpl.Expr) int {
	n := 0
	mpl.WalkExpr(e, func(mpl.Expr) bool { n++; return true })
	return n
}

// resolve substitutes variables and constants in e using the state,
// producing a closed expression over (rank, nproc), or nil when the
// expression depends on unknown values or input data.
func (a *analyzer) resolve(e mpl.Expr, s state) mpl.Expr {
	var sub func(e mpl.Expr) mpl.Expr
	sub = func(e mpl.Expr) mpl.Expr {
		switch x := e.(type) {
		case *mpl.IntLit:
			return x
		case *mpl.Ident:
			switch x.Name {
			case mpl.BuiltinRank, mpl.BuiltinNproc:
				return x
			}
			if v, ok := a.consts[x.Name]; ok {
				return mpl.Int(v)
			}
			return s.get(x.Name) // nil when ⊤
		case *mpl.Call:
			return nil // input(...) is irregular
		case *mpl.Unary:
			inner := sub(x.X)
			if inner == nil {
				return nil
			}
			return &mpl.Unary{Op: x.Op, X: inner}
		case *mpl.Binary:
			l := sub(x.L)
			if l == nil {
				return nil
			}
			r := sub(x.R)
			if r == nil {
				return nil
			}
			return &mpl.Binary{Op: x.Op, L: l, R: r}
		default:
			return nil
		}
	}
	out := sub(e)
	if out == nil {
		return nil
	}
	// Simplification keeps substituted expressions small (e.g. iteration
	// counters like 0+1+1 fold to 2), delaying the size widening and
	// making resolved parameters readable in diagnostics.
	out = mpl.Simplify(out)
	if exprSize(out) > maxExprSize {
		return nil
	}
	return out
}

// recordParam joins a newly observed resolution into the per-statement
// record: disagreeing resolutions across loop iterations widen to the
// wildcard.
func (a *analyzer) recordParam(id int, resolved mpl.Expr) {
	newParam := attr.WildcardParam
	if resolved != nil {
		newParam = attr.ExprParam(resolved)
	}
	old, seen := a.res.Params[id]
	if !seen {
		a.res.Params[id] = newParam
		return
	}
	if old.Wildcard || newParam.Wildcard || mpl.ExprString(old.Expr) != mpl.ExprString(newParam.Expr) {
		a.res.Params[id] = attr.WildcardParam
	}
}

func (a *analyzer) recordBranch(id int, resolved mpl.Expr) {
	nb := BranchInfo{Resolved: resolved, IDDependent: resolved != nil && mentionsRank(resolved)}
	old, seen := a.res.Branches[id]
	if !seen {
		a.res.Branches[id] = nb
		return
	}
	if old.Resolved == nil || resolved == nil || mpl.ExprString(old.Resolved) != mpl.ExprString(resolved) {
		a.res.Branches[id] = BranchInfo{}
	}
}

func mentionsRank(e mpl.Expr) bool {
	found := false
	mpl.WalkExpr(e, func(x mpl.Expr) bool {
		if id, ok := x.(*mpl.Ident); ok && id.Name == mpl.BuiltinRank {
			found = true
			return false
		}
		return true
	})
	return found
}

// body analyzes a statement list, mutating s to the post-state.
func (a *analyzer) body(stmts []mpl.Stmt, s state) {
	for _, st := range stmts {
		a.stmt(st, s)
	}
}

func (a *analyzer) stmt(st mpl.Stmt, s state) {
	switch n := st.(type) {
	case *mpl.Assign:
		s[n.Name] = a.resolve(n.X, s)
	case *mpl.Work:
		// No state change.
	case *mpl.Send:
		a.recordParam(n.ID(), a.resolve(n.Dest, s))
	case *mpl.Recv:
		a.recordParam(n.ID(), a.resolve(n.Src, s))
		s[n.Var] = nil // received value is unknown
	case *mpl.Bcast:
		a.recordParam(n.ID(), a.resolve(n.Root, s))
		s[n.Var] = nil // root's value is unknown to the analysis
	case *mpl.Reduce:
		a.recordParam(n.ID(), a.resolve(n.Root, s))
		s[n.Var] = nil // the root's sum is unknown; conservatively widen all
	case *mpl.Chkpt:
		// No state change.
	case *mpl.If:
		a.recordBranch(n.ID(), a.resolve(n.Cond, s))
		thenState := s.clone()
		a.body(n.Then, thenState)
		elseState := s.clone()
		a.body(n.Else, elseState)
		// s := join(then, else)
		for k := range s {
			delete(s, k)
		}
		for k, v := range thenState {
			s[k] = v
		}
		s.join(elseState)
	case *mpl.While:
		// Fixpoint: the loop may execute zero or more times.
		cur := s.clone()
		for {
			a.recordBranch(n.ID(), a.resolve(n.Cond, cur))
			iter := cur.clone()
			a.body(n.Body, iter)
			next := cur.clone()
			next.join(iter)
			if next.equal(cur) {
				break
			}
			cur = next
		}
		for k := range s {
			delete(s, k)
		}
		for k, v := range cur {
			s[k] = v
		}
	}
}
