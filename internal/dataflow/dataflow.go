// Package dataflow performs the rank data-flow analysis of the paper's
// §3.2: "we first determine the variables and constants that depend on
// process IDs, and then use the technique of data flow analysis to
// determine whether each condition expression is ID-dependent or not."
//
// The analysis is a forward abstract interpretation over the structured MPL
// AST. Each variable's abstract value is either a closed symbolic
// expression over (rank, nproc) — meaning the variable's concrete value is
// that expression for every execution — or unknown (⊤). Values received in
// messages, read from input data, or merged inconsistently at joins are ⊤.
// From the fixpoint the analysis derives, per communication statement, the
// resolved destination/source parameter (a closed expression, or the
// wildcard for the paper's irregular patterns), and per branch statement
// whether its condition is ID-dependent together with the resolved
// condition.
package dataflow

import (
	"repro/internal/attr"
	"repro/internal/mpl"
)

// BranchInfo describes one branch (if/while) statement.
type BranchInfo struct {
	// Resolved is the condition as a closed expression over (rank, nproc);
	// nil when the condition is not statically resolvable.
	Resolved mpl.Expr
	// IDDependent reports whether the condition is resolvable and actually
	// mentions rank — the paper's ID-dependent branches. Only these
	// contribute path attributes.
	IDDependent bool
}

// Result holds the analysis outcome.
type Result struct {
	// Params maps send/recv/bcast statement ids to their resolved
	// destination/source/root parameter.
	Params map[int]attr.Param
	// Branches maps if/while statement ids to branch information.
	Branches map[int]BranchInfo
}

// maxExprSize bounds substituted expressions; larger results widen to ⊤.
// Rank arithmetic in real SPMD code is tiny; the bound only guards against
// pathological self-referential growth inside loops.
const maxExprSize = 64

// state holds one abstract value per tracked variable, indexed by the
// analyzer's variable table; a nil Expr means ⊤. Every assignable name is
// in the table (declared variables plus any assignment/receive targets), so
// the dense representation is total: clone is one slice copy and join/equal
// are element-wise, with none of the map iteration the fixpoint used to pay
// for on every loop round.
type state []mpl.Expr

// join merges two states in place into s: variables whose abstract values
// differ become ⊤.
func (s state) join(o state) {
	for i, v := range o {
		if !sameAbstract(s[i], v) {
			s[i] = nil
		}
	}
}

var zeroLit mpl.Expr = mpl.Int(0)

// smallLits interns the literal values constant folding produces most —
// loop counters and 0/1 condition results. Literals are immutable, so
// sharing across analyses is safe.
var smallLits = func() [129]mpl.Expr {
	var a [129]mpl.Expr
	for i := range a {
		a[i] = mpl.Int(i)
	}
	return a
}()

func (a *analyzer) intLit(v int) mpl.Expr {
	if v >= 0 && v < len(smallLits) {
		return smallLits[v]
	}
	return mpl.Int(v)
}

// sameAbstract compares abstract values. Equality is defined by rendering
// (two values are the same when they print the same), but the common cases
// — shared nodes and structurally identical trees — are decided without
// allocating the strings; only structurally different trees that might
// still print alike (e.g. associativity regroupings) pay for ExprString.
func sameAbstract(a, b mpl.Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	if structEqual(a, b) {
		return true
	}
	return mpl.ExprString(a) == mpl.ExprString(b)
}

func structEqual(a, b mpl.Expr) bool {
	if a == b {
		return true
	}
	switch x := a.(type) {
	case *mpl.IntLit:
		y, ok := b.(*mpl.IntLit)
		return ok && x.Value == y.Value
	case *mpl.Ident:
		y, ok := b.(*mpl.Ident)
		return ok && x.Name == y.Name
	case *mpl.Call:
		y, ok := b.(*mpl.Call)
		if !ok || x.Name != y.Name || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !structEqual(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	case *mpl.Unary:
		y, ok := b.(*mpl.Unary)
		return ok && x.Op == y.Op && structEqual(x.X, y.X)
	case *mpl.Binary:
		y, ok := b.(*mpl.Binary)
		return ok && x.Op == y.Op && structEqual(x.L, y.L) && structEqual(x.R, y.R)
	default:
		return false
	}
}

func (s state) equal(o state) bool {
	for i := range s {
		if !sameAbstract(s[i], o[i]) {
			return false
		}
	}
	return true
}

// analyzer carries the program context and the accumulated records.
type analyzer struct {
	consts    map[string]int
	constLits map[string]mpl.Expr // interned literal per constant
	varIdx    map[string]int      // variable name -> state slot
	pool      []state             // released state buffers for borrow
	interned  map[internKey]mpl.Expr
	res       *Result
}

// internKey identifies a rebuilt Unary (r nil) or Binary node by operator
// and operand identity. Operands are themselves interned literals or
// shared program nodes, so the same substitution produces the same key on
// every fixpoint iteration.
type internKey struct {
	op   string
	l, r mpl.Expr
}

// internPut records a freshly built node for its key. Loop fixpoints
// re-substitute the same few shapes every iteration; without sharing each
// iteration allocates a fresh identical tree. Abstract values are
// immutable, so sharing is safe.
func (a *analyzer) internPut(k internKey, e mpl.Expr) {
	if a.interned == nil {
		a.interned = make(map[internKey]mpl.Expr, 16)
	}
	a.interned[k] = e
}

// borrow returns a copy of src backed by a pooled buffer when one is
// available. Loop fixpoints clone states every iteration — and nested loops
// re-run their inner fixpoint per outer iteration — so recycling the
// buffers keeps the whole analysis at O(nesting depth) state allocations
// instead of O(total iterations).
func (a *analyzer) borrow(src state) state {
	if k := len(a.pool); k > 0 {
		b := a.pool[k-1][:0]
		a.pool = a.pool[:k-1]
		return append(b, src...)
	}
	return append(state(nil), src...) // abstract values are immutable; sharing is fine
}

func (a *analyzer) release(b state) {
	a.pool = append(a.pool, b)
}

// Analyze runs the analysis on a program.
func Analyze(p *mpl.Program) *Result {
	a := &analyzer{
		consts:    make(map[string]int, len(p.Consts)),
		constLits: make(map[string]mpl.Expr, len(p.Consts)),
		res: &Result{
			// Sized by statement count: growing the per-statement records
			// bucket by bucket showed up in the transform profile.
			Params:   make(map[int]attr.Param, p.StmtCount()),
			Branches: make(map[int]BranchInfo, 8),
		},
	}
	for _, c := range p.Consts {
		a.consts[c.Name] = c.Value
		a.constLits[c.Name] = mpl.Int(c.Value)
	}
	// The shared VarTable covers declared variables plus undeclared
	// assignment/receive targets, so the dense state is total and reads of
	// never-assigned names fall back to the implicit zero exactly as the
	// sparse representation did.
	a.varIdx = NewVarTable(p).Index
	init := make(state, len(a.varIdx))
	for i := range init {
		init[i] = zeroLit
	}
	a.body(p.Body, init)
	return a.res
}

// exprSize counts expression nodes (direct recursion; this runs after
// every resolve and a WalkExpr closure here would allocate).
func exprSize(e mpl.Expr) int {
	switch x := e.(type) {
	case *mpl.Call:
		n := 1
		for _, arg := range x.Args {
			n += exprSize(arg)
		}
		return n
	case *mpl.Unary:
		return 1 + exprSize(x.X)
	case *mpl.Binary:
		return 1 + exprSize(x.L) + exprSize(x.R)
	default:
		return 1
	}
}

// resolve substitutes variables and constants in e using the state,
// producing a closed expression over (rank, nproc), or nil when the
// expression depends on unknown values or input data.
func (a *analyzer) resolve(e mpl.Expr, s state) mpl.Expr {
	out := a.subst(e, s)
	if out == nil {
		return nil
	}
	// Simplification keeps substituted expressions small (e.g. iteration
	// counters like 0+1+1 fold to 2), delaying the size widening and
	// making resolved parameters readable in diagnostics.
	out = mpl.Simplify(out)
	if exprSize(out) > maxExprSize {
		return nil
	}
	return out
}

// subst is resolve's substitution pass, written as a method (not a
// recursive closure — resolve runs on every statement of every fixpoint
// iteration, and the escaping closure allocation dominated the analysis).
func (a *analyzer) subst(e mpl.Expr, s state) mpl.Expr {
	switch x := e.(type) {
	case *mpl.IntLit:
		return x
	case *mpl.Ident:
		switch x.Name {
		case mpl.BuiltinRank, mpl.BuiltinNproc:
			return x
		}
		if lit, ok := a.constLits[x.Name]; ok {
			return lit // interned: abstract values are never mutated
		}
		if i, ok := a.varIdx[x.Name]; ok {
			return s[i] // nil when ⊤
		}
		return zeroLit // never-assigned name: the implicit zero
	case *mpl.Call:
		return nil // input(...) is irregular
	case *mpl.Unary:
		inner := a.subst(x.X, s)
		if inner == nil {
			return nil
		}
		if inner == x.X {
			return x // nothing substituted; share the original node
		}
		if lit, ok := inner.(*mpl.IntLit); ok {
			switch x.Op {
			case "-":
				return a.intLit(-lit.Value)
			case "!":
				if lit.Value == 0 {
					return a.intLit(1)
				}
				return a.intLit(0)
			}
		}
		k := internKey{op: x.Op, l: inner}
		if e, ok := a.interned[k]; ok {
			return e
		}
		e := mpl.Expr(&mpl.Unary{Op: x.Op, X: inner})
		a.internPut(k, e)
		return e
	case *mpl.Binary:
		l := a.subst(x.L, s)
		if l == nil {
			return nil
		}
		r := a.subst(x.R, s)
		if r == nil {
			return nil
		}
		if l == x.L && r == x.R {
			return x // nothing substituted; share the original node
		}
		// Fold constant-constant right here: loop counters and resolved
		// conditions hit this on every fixpoint iteration, and building the
		// Binary only for Simplify to collapse it doubled the garbage.
		if ll, ok := l.(*mpl.IntLit); ok {
			if rl, ok := r.(*mpl.IntLit); ok {
				if v, ok := mpl.FoldBinary(x.Op, ll.Value, rl.Value); ok {
					return a.intLit(v)
				}
			}
		}
		k := internKey{op: x.Op, l: l, r: r}
		if e, ok := a.interned[k]; ok {
			return e
		}
		e := mpl.Expr(&mpl.Binary{Op: x.Op, L: l, R: r})
		a.internPut(k, e)
		return e
	default:
		return nil
	}
}

// recordParam joins a newly observed resolution into the per-statement
// record: disagreeing resolutions across loop iterations widen to the
// wildcard.
func (a *analyzer) recordParam(id int, resolved mpl.Expr) {
	newParam := attr.WildcardParam
	if resolved != nil {
		newParam = attr.ExprParam(resolved)
	}
	old, seen := a.res.Params[id]
	if !seen {
		a.res.Params[id] = newParam
		return
	}
	if old.Wildcard || newParam.Wildcard || !sameAbstract(old.Expr, newParam.Expr) {
		a.res.Params[id] = attr.WildcardParam
	}
}

func (a *analyzer) recordBranch(id int, resolved mpl.Expr) {
	nb := BranchInfo{Resolved: resolved, IDDependent: resolved != nil && mentionsRank(resolved)}
	old, seen := a.res.Branches[id]
	if !seen {
		a.res.Branches[id] = nb
		return
	}
	if old.Resolved == nil || resolved == nil || !sameAbstract(old.Resolved, resolved) {
		a.res.Branches[id] = BranchInfo{}
	}
}

// mentionsRank recurses directly (no WalkExpr closure — this runs on every
// branch revisit of the loop fixpoint, and the escaping closure was a
// measurable share of the analysis' allocations).
func mentionsRank(e mpl.Expr) bool {
	switch x := e.(type) {
	case *mpl.Ident:
		return x.Name == mpl.BuiltinRank
	case *mpl.Call:
		for _, arg := range x.Args {
			if mentionsRank(arg) {
				return true
			}
		}
		return false
	case *mpl.Unary:
		return mentionsRank(x.X)
	case *mpl.Binary:
		return mentionsRank(x.L) || mentionsRank(x.R)
	default:
		return false
	}
}

// body analyzes a statement list, mutating s to the post-state.
func (a *analyzer) body(stmts []mpl.Stmt, s state) {
	for _, st := range stmts {
		a.stmt(st, s)
	}
}

func (a *analyzer) stmt(st mpl.Stmt, s state) {
	switch n := st.(type) {
	case *mpl.Assign:
		s[a.varIdx[n.Name]] = a.resolve(n.X, s)
	case *mpl.Work:
		// No state change.
	case *mpl.Send:
		a.recordParam(n.ID(), a.resolve(n.Dest, s))
	case *mpl.Recv:
		a.recordParam(n.ID(), a.resolve(n.Src, s))
		s[a.varIdx[n.Var]] = nil // received value is unknown
	case *mpl.Bcast:
		a.recordParam(n.ID(), a.resolve(n.Root, s))
		s[a.varIdx[n.Var]] = nil // root's value is unknown to the analysis
	case *mpl.Reduce:
		a.recordParam(n.ID(), a.resolve(n.Root, s))
		s[a.varIdx[n.Var]] = nil // the root's sum is unknown; conservatively widen all
	case *mpl.Chkpt:
		// No state change.
	case *mpl.If:
		a.recordBranch(n.ID(), a.resolve(n.Cond, s))
		thenState := a.borrow(s)
		a.body(n.Then, thenState)
		elseState := a.borrow(s)
		a.body(n.Else, elseState)
		// s := join(then, else)
		copy(s, thenState)
		s.join(elseState)
		a.release(thenState)
		a.release(elseState)
	case *mpl.While:
		// Fixpoint: the loop may execute zero or more times. iter and next
		// are overwritten each iteration; cur and next swap roles, so all
		// three buffers live for the whole fixpoint.
		cur := a.borrow(s)
		iter := a.borrow(s)
		next := a.borrow(s)
		for {
			a.recordBranch(n.ID(), a.resolve(n.Cond, cur))
			iter = append(iter[:0], cur...)
			a.body(n.Body, iter)
			next = append(next[:0], cur...)
			next.join(iter)
			if next.equal(cur) {
				break
			}
			cur, next = next, cur
		}
		copy(s, cur)
		a.release(cur)
		a.release(iter)
		a.release(next)
	}
}
