// Package montecarlo cross-validates the paper's analytic §4 model by
// direct stochastic simulation in virtual time: checkpoint intervals are
// attempted against exponentially-distributed failures, failed attempts
// pay the observed time-to-failure plus a recovery retry, and the sampled
// mean interval time Γ̂ (and overhead ratio r̂) are compared against the
// closed forms. This is the "experiment" the paper's evaluation implies
// but does not run — it gives the figures an empirical backbone.
package montecarlo

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/markov"
	"repro/internal/par"
)

// maxFeasibleHardness bounds λ(T+R+L): beyond it, the expected number of
// retry attempts per interval (e^{λ(T+R+L)}) makes simulation — and the
// modeled system — effectively non-terminating.
const maxFeasibleHardness = 15.0

// shardTrials is the fixed shard size for parallel simulation. Sharding is
// a function of Trials alone — never of Workers — so the trial→RNG-stream
// assignment, and therefore every bit of the result, is identical for any
// worker count. Workers only decides how many shards run at once.
const shardTrials = 8192

// Config controls a simulation.
type Config struct {
	Params markov.Params
	Trials int   // number of simulated intervals
	Seed   int64 // deterministic randomness
	// Workers bounds the goroutines simulating shards: 0 means
	// runtime.GOMAXPROCS(0), 1 is fully serial, negative is rejected with a
	// typed error (par.InvalidWorkersError). The estimate is bit-identical
	// for every legal value — see EXPERIMENTS.md.
	Workers int
}

// Estimate is a sampled statistic with its standard error.
type Estimate struct {
	Mean   float64
	StdErr float64
	Trials int
}

// String renders "mean ± stderr".
func (e Estimate) String() string {
	return fmt.Sprintf("%.6g ± %.2g (n=%d)", e.Mean, e.StdErr, e.Trials)
}

// Within reports whether x lies inside k standard errors of the estimate.
func (e Estimate) Within(x float64, k float64) bool {
	return math.Abs(x-e.Mean) <= k*e.StdErr
}

// moments is a per-shard (n, Σx, Σx²) accumulator. Merging two is exact
// integer addition on n and float addition on the sums; the merge ORDER is
// what must stay fixed for bit-identical results, and mergeMoments pins it.
type moments struct {
	n          int
	sum, sumSq float64
}

func (a moments) merge(b moments) moments {
	return moments{n: a.n + b.n, sum: a.sum + b.sum, sumSq: a.sumSq + b.sumSq}
}

// mergeMoments folds ordered shard moments pairwise: (0,1), (2,3), … then
// the same over the halved list, a fixed binary reduction tree. The tree
// shape depends only on the shard count, never on which worker finished
// first, so float summation order — and the resulting Estimate — is
// bit-identical for any worker count.
func mergeMoments(ms []moments) moments {
	if len(ms) == 0 {
		return moments{}
	}
	for len(ms) > 1 {
		half := ms[: (len(ms)+1)/2 : (len(ms)+1)/2]
		for i := 0; i < len(half); i++ {
			lo, hi := 2*i, 2*i+1
			if hi < len(ms) {
				half[i] = ms[lo].merge(ms[hi])
			} else {
				half[i] = ms[lo]
			}
		}
		ms = half
	}
	return ms[0]
}

// splitmix64 is the SplitMix64 output mixer: a bijective avalanche on a
// 64-bit counter stream, the standard way to expand one user seed into
// statistically independent per-shard seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// shardSeed derives shard s's RNG seed from the config seed. Distinct
// shards of one run get decorrelated streams; the same (Seed, shard) pair
// always maps to the same stream regardless of Trials or Workers.
func shardSeed(seed int64, shard int) int64 {
	return int64(splitmix64(uint64(seed) ^ splitmix64(uint64(shard))))
}

// simulateShard runs `trials` Figure 7 interval trials on one private RNG
// stream and returns their raw moments.
func simulateShard(p markov.Params, trials int, seed int64) moments {
	r := rand.New(rand.NewSource(seed))
	first := p.T + p.O
	retry := p.T + p.R + p.L
	var m moments
	for trial := 0; trial < trials; trial++ {
		total := 0.0
		// First attempt.
		need := first
		for {
			ttf := r.ExpFloat64() / p.Lambda
			if ttf >= need {
				total += need
				break
			}
			total += ttf
			need = retry
		}
		m.n++
		m.sum += total
		m.sumSq += total * total
	}
	return m
}

// SimulateGamma samples the expected execution time of one checkpoint
// interval under the Figure 7 dynamics:
//
//   - attempt the interval (duration T+O); an exponential failure inside
//     it costs the time-to-failure and moves to recovery;
//   - each recovery retry needs T+R+L failure-free; a failure inside it
//     costs its time-to-failure and retries.
//
// Trials are sharded into fixed-size blocks with per-shard seeds derived
// from Config.Seed by a SplitMix64 mixer and simulated on up to
// Config.Workers goroutines; shard moments merge in a fixed pairwise tree,
// so the returned Estimate is bit-identical for every worker count
// (including 1).
func SimulateGamma(cfg Config) (Estimate, error) {
	p := cfg.Params
	if err := p.Validate(); err != nil {
		return Estimate{}, err
	}
	if cfg.Trials <= 0 {
		return Estimate{}, fmt.Errorf("montecarlo: Trials must be positive, got %d", cfg.Trials)
	}
	workers, err := par.Workers(cfg.Workers)
	if err != nil {
		return Estimate{}, err
	}
	retry := p.T + p.R + p.L
	// An interval completes failure-free with probability e^{-λ·retry}, so
	// a trial needs ~e^{λ·retry} attempts on average. Past ~15 the real
	// system would effectively never finish an interval — and neither
	// would this simulation. Refuse rather than hang.
	if hardness := p.Lambda * retry; hardness > maxFeasibleHardness {
		return Estimate{}, fmt.Errorf(
			"montecarlo: λ(T+R+L) = %.1f means ~e^%.0f retries per interval; regime infeasible to simulate (max %v)",
			hardness, hardness, maxFeasibleHardness)
	}

	shards := (cfg.Trials + shardTrials - 1) / shardTrials
	perShard := make([]moments, shards)
	err = par.ForEach(context.Background(), workers, perShard,
		func(_ context.Context, s int, _ moments) error {
			trials := shardTrials
			if s == shards-1 {
				trials = cfg.Trials - s*shardTrials
			}
			perShard[s] = simulateShard(p, trials, shardSeed(cfg.Seed, s))
			return nil
		})
	if err != nil {
		return Estimate{}, err
	}
	m := mergeMoments(perShard)
	mean := m.sum / float64(m.n)
	variance := m.sumSq/float64(m.n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Estimate{
		Mean:   mean,
		StdErr: math.Sqrt(variance / float64(m.n)),
		Trials: m.n,
	}, nil
}

// SimulateOverheadRatio samples r̂ = Γ̂/T − 1.
func SimulateOverheadRatio(cfg Config) (Estimate, error) {
	g, err := SimulateGamma(cfg)
	if err != nil {
		return Estimate{}, err
	}
	return Estimate{
		Mean:   g.Mean/cfg.Params.T - 1,
		StdErr: g.StdErr / cfg.Params.T,
		Trials: g.Trials,
	}, nil
}

// ValidationRow compares analytic and simulated values for one protocol
// at one scale.
type ValidationRow struct {
	Protocol  markov.Protocol
	N         int
	Analytic  float64
	Simulated Estimate
}

// ValidateFigure8 runs the Monte Carlo counterpart of Figure 8: for each
// protocol and process count it returns the analytic overhead ratio next
// to the simulated estimate. It is ValidateFigure8Workers with the
// GOMAXPROCS default.
func ValidateFigure8(b markov.Baseline, ns []int, trials int, seed int64) ([]ValidationRow, error) {
	return ValidateFigure8Workers(b, ns, trials, seed, 0)
}

// ValidateFigure8Workers is ValidateFigure8 with an explicit worker bound
// shared by the row sweep and each row's trial shards (0 = GOMAXPROCS,
// 1 = serial; the rows are bit-identical either way).
func ValidateFigure8Workers(b markov.Baseline, ns []int, trials int, seed int64, workers int) ([]ValidationRow, error) {
	protocols := []markov.Protocol{markov.ApplDriven, markov.SaS, markov.ChandyLamport}
	type cell struct {
		proto markov.Protocol
		n     int
	}
	cells := make([]cell, 0, len(ns)*len(protocols))
	for _, n := range ns {
		for _, proto := range protocols {
			cells = append(cells, cell{proto, n})
		}
	}
	// Parallelism lives inside SimulateGamma's shard fan-out; the row loop
	// itself stays serial so the (row × shard) pool is bounded by one
	// worker budget instead of multiplying two.
	rows := make([]ValidationRow, 0, len(cells))
	for _, c := range cells {
		p := b.ParamsFor(c.proto, c.n)
		analytic, err := markov.OverheadRatio(p)
		if err != nil {
			return nil, err
		}
		sim, err := SimulateOverheadRatio(Config{
			Params:  p,
			Trials:  trials,
			Seed:    seed + int64(c.n)*31 + int64(c.proto),
			Workers: workers,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, ValidationRow{Protocol: c.proto, N: c.n, Analytic: analytic, Simulated: sim})
	}
	return rows, nil
}
