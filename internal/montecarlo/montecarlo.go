// Package montecarlo cross-validates the paper's analytic §4 model by
// direct stochastic simulation in virtual time: checkpoint intervals are
// attempted against exponentially-distributed failures, failed attempts
// pay the observed time-to-failure plus a recovery retry, and the sampled
// mean interval time Γ̂ (and overhead ratio r̂) are compared against the
// closed forms. This is the "experiment" the paper's evaluation implies
// but does not run — it gives the figures an empirical backbone.
package montecarlo

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/markov"
)

// maxFeasibleHardness bounds λ(T+R+L): beyond it, the expected number of
// retry attempts per interval (e^{λ(T+R+L)}) makes simulation — and the
// modeled system — effectively non-terminating.
const maxFeasibleHardness = 15.0

// Config controls a simulation.
type Config struct {
	Params markov.Params
	Trials int   // number of simulated intervals
	Seed   int64 // deterministic randomness
}

// Estimate is a sampled statistic with its standard error.
type Estimate struct {
	Mean   float64
	StdErr float64
	Trials int
}

// String renders "mean ± stderr".
func (e Estimate) String() string {
	return fmt.Sprintf("%.6g ± %.2g (n=%d)", e.Mean, e.StdErr, e.Trials)
}

// Within reports whether x lies inside k standard errors of the estimate.
func (e Estimate) Within(x float64, k float64) bool {
	return math.Abs(x-e.Mean) <= k*e.StdErr
}

// SimulateGamma samples the expected execution time of one checkpoint
// interval under the Figure 7 dynamics:
//
//   - attempt the interval (duration T+O); an exponential failure inside
//     it costs the time-to-failure and moves to recovery;
//   - each recovery retry needs T+R+L failure-free; a failure inside it
//     costs its time-to-failure and retries.
func SimulateGamma(cfg Config) (Estimate, error) {
	p := cfg.Params
	if err := p.Validate(); err != nil {
		return Estimate{}, err
	}
	if cfg.Trials <= 0 {
		return Estimate{}, fmt.Errorf("montecarlo: Trials must be positive, got %d", cfg.Trials)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	first := p.T + p.O
	retry := p.T + p.R + p.L
	// An interval completes failure-free with probability e^{-λ·retry}, so
	// a trial needs ~e^{λ·retry} attempts on average. Past ~15 the real
	// system would effectively never finish an interval — and neither
	// would this simulation. Refuse rather than hang.
	if hardness := p.Lambda * retry; hardness > maxFeasibleHardness {
		return Estimate{}, fmt.Errorf(
			"montecarlo: λ(T+R+L) = %.1f means ~e^%.0f retries per interval; regime infeasible to simulate (max %v)",
			hardness, hardness, maxFeasibleHardness)
	}

	var sum, sumSq float64
	for trial := 0; trial < cfg.Trials; trial++ {
		total := 0.0
		// First attempt.
		need := first
		for {
			ttf := r.ExpFloat64() / p.Lambda
			if ttf >= need {
				total += need
				break
			}
			total += ttf
			need = retry
		}
		sum += total
		sumSq += total * total
	}
	mean := sum / float64(cfg.Trials)
	variance := sumSq/float64(cfg.Trials) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Estimate{
		Mean:   mean,
		StdErr: math.Sqrt(variance / float64(cfg.Trials)),
		Trials: cfg.Trials,
	}, nil
}

// SimulateOverheadRatio samples r̂ = Γ̂/T − 1.
func SimulateOverheadRatio(cfg Config) (Estimate, error) {
	g, err := SimulateGamma(cfg)
	if err != nil {
		return Estimate{}, err
	}
	return Estimate{
		Mean:   g.Mean/cfg.Params.T - 1,
		StdErr: g.StdErr / cfg.Params.T,
		Trials: g.Trials,
	}, nil
}

// ValidationRow compares analytic and simulated values for one protocol
// at one scale.
type ValidationRow struct {
	Protocol  markov.Protocol
	N         int
	Analytic  float64
	Simulated Estimate
}

// ValidateFigure8 runs the Monte Carlo counterpart of Figure 8: for each
// protocol and process count it returns the analytic overhead ratio next
// to the simulated estimate.
func ValidateFigure8(b markov.Baseline, ns []int, trials int, seed int64) ([]ValidationRow, error) {
	protocols := []markov.Protocol{markov.ApplDriven, markov.SaS, markov.ChandyLamport}
	rows := make([]ValidationRow, 0, len(ns)*len(protocols))
	for _, n := range ns {
		for _, proto := range protocols {
			p := b.ParamsFor(proto, n)
			analytic, err := markov.OverheadRatio(p)
			if err != nil {
				return nil, err
			}
			sim, err := SimulateOverheadRatio(Config{
				Params: p,
				Trials: trials,
				Seed:   seed + int64(n)*31 + int64(proto),
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, ValidationRow{Protocol: proto, N: n, Analytic: analytic, Simulated: sim})
		}
	}
	return rows, nil
}
