package montecarlo

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"

	"repro/internal/markov"
	"repro/internal/par"
)

func TestSimulateGammaMatchesClosedForm(t *testing.T) {
	// Use a high failure rate so failures actually occur and the retry
	// path is exercised; with λ(T+O) ≈ 0.6 most trials hit at least one
	// failure.
	p := markov.Params{Lambda: 0.01, T: 50, O: 5, L: 8, R: 3}
	analytic, err := markov.Gamma(p)
	if err != nil {
		t.Fatal(err)
	}
	est, err := SimulateGamma(Config{Params: p, Trials: 200000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !est.Within(analytic, 4) {
		t.Errorf("analytic Γ %v outside 4σ of simulation %v", analytic, est)
	}
}

func TestSimulateGammaLowFailureRegime(t *testing.T) {
	// Paper regime: failures are rare, Γ ≈ T+O.
	p := markov.Params{Lambda: 1.23e-4, T: 300, O: 1.78, L: 4.292, R: 3.32}
	analytic, err := markov.Gamma(p)
	if err != nil {
		t.Fatal(err)
	}
	est, err := SimulateGamma(Config{Params: p, Trials: 100000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !est.Within(analytic, 4) {
		t.Errorf("analytic Γ %v outside 4σ of simulation %v", analytic, est)
	}
}

func TestSimulateOverheadRatio(t *testing.T) {
	p := markov.Params{Lambda: 0.005, T: 100, O: 4, L: 6, R: 2}
	analytic, err := markov.OverheadRatio(p)
	if err != nil {
		t.Fatal(err)
	}
	est, err := SimulateOverheadRatio(Config{Params: p, Trials: 150000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !est.Within(analytic, 4) {
		t.Errorf("analytic r %v outside 4σ of simulation %v", analytic, est)
	}
}

func TestSimulateDeterministicForSeed(t *testing.T) {
	cfg := Config{Params: markov.Params{Lambda: 0.01, T: 10, O: 1, L: 1, R: 1}, Trials: 1000, Seed: 42}
	a, err := SimulateGamma(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateGamma(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Mean != b.Mean || a.StdErr != b.StdErr {
		t.Error("same seed gave different estimates")
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := SimulateGamma(Config{Params: markov.Params{Lambda: 1, T: 1}, Trials: 0}); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := SimulateGamma(Config{Params: markov.Params{}, Trials: 10}); err == nil {
		t.Error("invalid params accepted")
	}
	_, err := SimulateGamma(Config{Params: markov.Params{Lambda: 1, T: 1}, Trials: 10, Workers: -3})
	var inv *par.InvalidWorkersError
	if !errors.As(err, &inv) || inv.Workers != -3 {
		t.Errorf("Workers=-3: err = %v, want *par.InvalidWorkersError{-3}", err)
	}
}

func TestSimulateBitIdenticalAcrossWorkerCounts(t *testing.T) {
	// The load-bearing guarantee of the parallel engine: sharding is a
	// function of Trials alone and shard moments merge in a fixed tree, so
	// the Estimate must be IDENTICAL — not statistically close — for every
	// worker count. Trial counts straddle shard boundaries on purpose
	// (below one shard, exact multiples, ragged tails).
	p := markov.Params{Lambda: 0.01, T: 50, O: 5, L: 8, R: 3}
	for _, trials := range []int{1, 100, shardTrials, shardTrials + 1, 3*shardTrials + 17, 100000} {
		ref, err := SimulateGamma(Config{Params: p, Trials: trials, Seed: 42, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if ref.Trials != trials {
			t.Fatalf("trials=%d: estimate covers %d trials", trials, ref.Trials)
		}
		for _, workers := range []int{0, 2, 3, 8, 64} {
			got, err := SimulateGamma(Config{Params: p, Trials: trials, Seed: 42, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if got != ref {
				t.Errorf("trials=%d workers=%d: %+v differs from workers=1 %+v",
					trials, workers, got, ref)
			}
		}
	}
}

func TestShardSeedsDecorrelated(t *testing.T) {
	// Adjacent shards must get distinct seeds for every base seed,
	// including the adversarial 0 and -1.
	for _, seed := range []int64{0, -1, 1, 42, 1 << 40} {
		seen := map[int64]int{}
		for s := 0; s < 64; s++ {
			ss := shardSeed(seed, s)
			if prev, dup := seen[ss]; dup {
				t.Fatalf("seed %d: shards %d and %d collide on %d", seed, prev, s, ss)
			}
			seen[ss] = s
		}
	}
}

func TestInfeasibleRegimeRejected(t *testing.T) {
	// λ(T+R+L) = 31: each interval would need ~e^31 attempts.
	p := markov.Params{Lambda: 0.1, T: 300, O: 2, L: 4, R: 3}
	_, err := SimulateGamma(Config{Params: p, Trials: 10, Seed: 1})
	if err == nil || !strings.Contains(err.Error(), "infeasible") {
		t.Fatalf("err = %v, want infeasible-regime rejection", err)
	}
}

func TestEstimateString(t *testing.T) {
	e := Estimate{Mean: 1.5, StdErr: 0.01, Trials: 100}
	s := e.String()
	if !strings.Contains(s, "1.5") || !strings.Contains(s, "n=100") {
		t.Errorf("String = %q", s)
	}
}

func TestValidateFigure8AgreesWithAnalytic(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo sweep skipped in -short")
	}
	// Inflate the failure rate so the simulation sees failures at small
	// trial counts; agreement between chain and sampling is what matters.
	b := markov.PaperBaseline
	b.Lambda1 = 1e-4
	rows, err := ValidateFigure8(b, []int{2, 16, 64}, 60000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		// Either within 5σ or within 0.1% relative (σ can be tiny).
		rel := math.Abs(row.Analytic-row.Simulated.Mean) /
			math.Max(math.Abs(row.Analytic), 1e-12)
		if !row.Simulated.Within(row.Analytic, 5) && rel > 1e-3 {
			t.Errorf("%v n=%d: analytic %v vs simulated %v",
				row.Protocol, row.N, row.Analytic, row.Simulated)
		}
	}
}

// BenchmarkSimulateGamma sweeps worker counts over a fixed trial budget:
// the workers=1 sub-benchmark is the serial baseline the parallel speedup
// in BENCH_sweeps.json is measured against, and every variant returns the
// same bits.
func BenchmarkSimulateGamma(b *testing.B) {
	const trials = 200000
	counts := []int{1, 2, 4}
	if gmp := runtime.GOMAXPROCS(0); gmp > 4 {
		counts = append(counts, gmp)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := Config{
				Params:  markov.Params{Lambda: 0.01, T: 50, O: 5, L: 8, R: 3},
				Trials:  trials,
				Seed:    1,
				Workers: workers,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg.Seed = int64(i)
				if _, err := SimulateGamma(cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(trials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
		})
	}
}
