package par

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsEverySubmittedTask(t *testing.T) {
	p := NewPool(4)
	var ran atomic.Int64
	for i := 0; i < 100; i++ {
		p.Submit(func() { ran.Add(1) })
	}
	p.Close()
	if got := ran.Load(); got != 100 {
		t.Fatalf("ran %d tasks, want 100", got)
	}
}

func TestPoolCloseWaitsForInFlight(t *testing.T) {
	p := NewPool(2)
	var done atomic.Bool
	release := make(chan struct{})
	p.Submit(func() {
		<-release
		done.Store(true)
	})
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(release)
	}()
	p.Close()
	if !done.Load() {
		t.Fatal("Close returned before the in-flight task finished")
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(1)
	p.Submit(func() {})
	p.Close()
	p.Close() // must not panic on double close
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := NewPool(workers)
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 30; i++ {
		wg.Add(1)
		p.Submit(func() {
			defer wg.Done()
			n := cur.Add(1)
			for {
				old := peak.Load()
				if n <= old || peak.CompareAndSwap(old, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
		})
	}
	wg.Wait()
	p.Close()
	if got := peak.Load(); got > workers {
		t.Fatalf("observed %d concurrent tasks, want <= %d", got, workers)
	}
}

func TestPoolTrySubmit(t *testing.T) {
	p := NewPool(1)
	block := make(chan struct{})
	p.Submit(func() { <-block })
	// The lone worker is busy and nobody is receiving: TrySubmit must
	// refuse rather than queue. (Submit would block here.)
	refused := !p.TrySubmit(func() {})
	close(block)
	p.Close()
	if !refused {
		t.Fatal("TrySubmit accepted work with every worker busy")
	}
}
