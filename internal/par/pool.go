package par

import "sync"

// Pool is the package's dynamic-submission counterpart to Map/ForEach:
// where those fan out over a slice known up front, a Pool accepts work
// discovered over time — an open-loop arrival process whose jobs do not
// exist yet when the pool starts. Submit hands one task to an idle worker,
// blocking while all workers are busy (callers wanting load-shedding
// instead of blocking must gate Submit behind their own admission check,
// as the fleet engine does). Close waits for every submitted task to
// finish.
type Pool struct {
	tasks chan func()
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// NewPool starts a pool of exactly `workers` goroutines (0 selects
// GOMAXPROCS; negative panics — the fleet sizes pools from validated
// config, so a bad count here is a programming error, not input).
func NewPool(workers int) *Pool {
	w, err := Workers(workers)
	if err != nil {
		panic(err)
	}
	p := &Pool{
		// Unbuffered: Submit blocks until a worker actually takes the
		// task, so "all workers busy" is observable by the caller rather
		// than hidden in a queue that collapses under sustained overload.
		tasks: make(chan func()),
	}
	p.wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer p.wg.Done()
			for task := range p.tasks {
				task()
			}
		}()
	}
	return p
}

// Submit hands task to an idle worker, blocking until one takes it.
// Submit after Close panics (send on closed channel): the pool's owner
// must stop admissions before closing — exactly the drain ordering the
// fleet engine enforces.
func (p *Pool) Submit(task func()) {
	p.tasks <- task
}

// TrySubmit hands task to an idle worker if one is waiting right now and
// reports whether it was taken. It never blocks: the fleet's admission
// path uses it so that "no capacity" surfaces as a typed rejection
// immediately instead of queueing.
func (p *Pool) TrySubmit(task func()) bool {
	select {
	case p.tasks <- task:
		return true
	default:
		return false
	}
}

// Close stops accepting work and blocks until every submitted task has
// finished. Idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
