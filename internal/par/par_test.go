package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapPreservesOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{0, 1, 2, 7, 64} {
		got, err := Map(context.Background(), workers, items, func(_ context.Context, i, v int) (int, error) {
			return v * v, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(context.Background(), 4, nil, func(_ context.Context, i int, v int) (int, error) {
		t.Fatal("f called on empty input")
		return 0, nil
	})
	if err != nil || len(got) != 0 {
		t.Fatalf("Map(nil) = %v, %v", got, err)
	}
}

func TestWorkersNormalization(t *testing.T) {
	if _, err := Workers(-1); err == nil {
		t.Error("Workers(-1) accepted")
	} else {
		var inv *InvalidWorkersError
		if !errors.As(err, &inv) || inv.Workers != -1 {
			t.Errorf("Workers(-1) error = %#v, want *InvalidWorkersError{-1}", err)
		}
	}
	if n, err := Workers(0); err != nil || n != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, %v, want GOMAXPROCS", n, err)
	}
	if n, err := Workers(3); err != nil || n != 3 {
		t.Errorf("Workers(3) = %d, %v", n, err)
	}
}

func TestMapRejectsNegativeWorkers(t *testing.T) {
	_, err := Map(context.Background(), -2, []int{1}, func(_ context.Context, i, v int) (int, error) {
		return v, nil
	})
	var inv *InvalidWorkersError
	if !errors.As(err, &inv) {
		t.Fatalf("err = %v, want *InvalidWorkersError", err)
	}
}

func TestMapFirstErrorIsLowestIndex(t *testing.T) {
	items := make([]int, 200)
	for _, workers := range []int{1, 4, 16} {
		_, err := Map(context.Background(), workers, items, func(_ context.Context, i, _ int) (int, error) {
			if i%3 == 1 { // fails at 1, 4, 7, ... — lowest is 1
				return 0, fmt.Errorf("boom at %d", i)
			}
			return 0, nil
		})
		if err == nil || err.Error() != "boom at 1" {
			t.Fatalf("workers=%d: err = %v, want boom at 1", workers, err)
		}
	}
}

func TestMapCancelsOnError(t *testing.T) {
	items := make([]int, 1000)
	var ran atomic.Int64
	_, err := Map(context.Background(), 4, items, func(ctx context.Context, i, _ int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, errors.New("early failure")
		}
		return 0, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := ran.Load(); n == 1000 {
		t.Error("cancellation never short-circuited the sweep")
	}
}

func TestMapHonorsParentContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Map(ctx, 4, make([]int, 50), func(ctx context.Context, i, _ int) (int, error) {
		return 0, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	_, err := Map(context.Background(), workers, make([]int, 64), func(_ context.Context, i, _ int) (int, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		runtime.Gosched()
		cur.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds workers=%d", p, workers)
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	items := []int{1, 2, 3, 4, 5}
	if err := ForEach(context.Background(), 2, items, func(_ context.Context, _ int, v int) error {
		sum.Add(int64(v))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 15 {
		t.Fatalf("sum = %d, want 15", sum.Load())
	}
	wantErr := errors.New("nope")
	err := ForEach(context.Background(), 2, items, func(_ context.Context, i int, _ int) error {
		if i == 0 {
			return wantErr
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
}
