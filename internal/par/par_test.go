package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapPreservesOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{0, 1, 2, 7, 64} {
		got, err := Map(context.Background(), workers, items, func(_ context.Context, i, v int) (int, error) {
			return v * v, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(context.Background(), 4, nil, func(_ context.Context, i int, v int) (int, error) {
		t.Fatal("f called on empty input")
		return 0, nil
	})
	if err != nil || len(got) != 0 {
		t.Fatalf("Map(nil) = %v, %v", got, err)
	}
}

func TestWorkersNormalization(t *testing.T) {
	if _, err := Workers(-1); err == nil {
		t.Error("Workers(-1) accepted")
	} else {
		var inv *InvalidWorkersError
		if !errors.As(err, &inv) || inv.Workers != -1 {
			t.Errorf("Workers(-1) error = %#v, want *InvalidWorkersError{-1}", err)
		}
	}
	if n, err := Workers(0); err != nil || n != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, %v, want GOMAXPROCS", n, err)
	}
	if n, err := Workers(3); err != nil || n != 3 {
		t.Errorf("Workers(3) = %d, %v", n, err)
	}
}

func TestMapRejectsNegativeWorkers(t *testing.T) {
	_, err := Map(context.Background(), -2, []int{1}, func(_ context.Context, i, v int) (int, error) {
		return v, nil
	})
	var inv *InvalidWorkersError
	if !errors.As(err, &inv) {
		t.Fatalf("err = %v, want *InvalidWorkersError", err)
	}
}

func TestMapFirstErrorIsLowestIndex(t *testing.T) {
	items := make([]int, 200)
	for _, workers := range []int{1, 4, 16} {
		_, err := Map(context.Background(), workers, items, func(_ context.Context, i, _ int) (int, error) {
			if i%3 == 1 { // fails at 1, 4, 7, ... — lowest is 1
				return 0, fmt.Errorf("boom at %d", i)
			}
			return 0, nil
		})
		if err == nil || err.Error() != "boom at 1" {
			t.Fatalf("workers=%d: err = %v, want boom at 1", workers, err)
		}
	}
}

func TestMapCancelsOnError(t *testing.T) {
	items := make([]int, 1000)
	var ran atomic.Int64
	_, err := Map(context.Background(), 4, items, func(ctx context.Context, i, _ int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, errors.New("early failure")
		}
		return 0, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := ran.Load(); n == 1000 {
		t.Error("cancellation never short-circuited the sweep")
	}
}

func TestMapHonorsParentContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Map(ctx, 4, make([]int, 50), func(ctx context.Context, i, _ int) (int, error) {
		return 0, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	_, err := Map(context.Background(), workers, make([]int, 64), func(_ context.Context, i, _ int) (int, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		runtime.Gosched()
		cur.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds workers=%d", p, workers)
	}
}

func TestMapMoreWorkersThanItems(t *testing.T) {
	// The pool clamps to the item count: asking for 64 workers over 3
	// items must not leak idle goroutines or run anything twice.
	items := []int{10, 20, 30}
	var calls atomic.Int64
	got, err := Map(context.Background(), 64, items, func(_ context.Context, i, v int) (int, error) {
		calls.Add(1)
		return v + i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{10, 21, 32}; !equalInts(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("f ran %d times, want 3", n)
	}
}

func TestMapSingleItem(t *testing.T) {
	for _, workers := range []int{0, 1, 8} {
		got, err := Map(context.Background(), workers, []string{"x"}, func(_ context.Context, i int, s string) (string, error) {
			return s + "!", nil
		})
		if err != nil || len(got) != 1 || got[0] != "x!" {
			t.Fatalf("workers=%d: got %v, %v", workers, got, err)
		}
	}
}

func TestMapZeroItemsNonNil(t *testing.T) {
	got, err := Map(context.Background(), 4, []int{}, func(_ context.Context, i, v int) (int, error) {
		t.Error("f called on zero items")
		return 0, nil
	})
	if err != nil || len(got) != 0 {
		t.Fatalf("Map(empty) = %v, %v", got, err)
	}
}

func TestMapCancelMidMap(t *testing.T) {
	// Cancel the parent context while workers sit inside f: Map must
	// return (no goroutine leak past wg.Wait) with the cancellation error,
	// and items after the cancellation point must not start.
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	var started atomic.Int64
	done := make(chan error, 1)
	go func() {
		_, err := Map(ctx, 4, make([]int, 1000), func(ctx context.Context, i, _ int) (int, error) {
			started.Add(1)
			select {
			case <-release:
				return 0, nil
			case <-ctx.Done():
				return 0, ctx.Err()
			}
		})
		done <- err
	}()
	for started.Load() < 4 {
		runtime.Gosched()
	}
	cancel()
	err := <-done
	close(release)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := started.Load(); n >= 1000 {
		t.Fatalf("all %d items started despite mid-map cancellation", n)
	}
}

func TestMapErrorIndexStableUnderContention(t *testing.T) {
	// Many failing items racing across workers: the reported error must
	// come from the lowest failing index every time, independent of which
	// worker fails first (run under -race in CI via make check).
	items := make([]int, 300)
	for round := 0; round < 25; round++ {
		_, err := Map(context.Background(), 8, items, func(_ context.Context, i, _ int) (int, error) {
			if i >= 17 {
				return 0, fmt.Errorf("boom at %d", i)
			}
			runtime.Gosched()
			return 0, nil
		})
		if err == nil || err.Error() != "boom at 17" {
			t.Fatalf("round %d: err = %v, want boom at 17", round, err)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	items := []int{1, 2, 3, 4, 5}
	if err := ForEach(context.Background(), 2, items, func(_ context.Context, _ int, v int) error {
		sum.Add(int64(v))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 15 {
		t.Fatalf("sum = %d, want 15", sum.Load())
	}
	wantErr := errors.New("nope")
	err := ForEach(context.Background(), 2, items, func(_ context.Context, i int, _ int) error {
		if i == 0 {
			return wantErr
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
}
