// Package par is the repo's small parallel-execution engine: a bounded
// worker pool with order-preserving fan-out. Every compute-heavy sweep in
// the repository — Monte Carlo trial shards, the Figure 8/9 analytic
// sweeps, chkptbench's seed and scale loops — is embarrassingly parallel
// over independent items, so one shared primitive covers them all:
//
//   - Map runs f over every item on at most `workers` goroutines and
//     returns the results in input order, so parallel sweeps emit output
//     byte-identical to their serial form;
//   - ForEach is Map without result collection;
//   - the first error cancels the shared context, remaining workers drain
//     without starting new items, and the error reported is the one from
//     the lowest input index (deterministic regardless of scheduling).
//
// Work is handed out by an atomic cursor, not pre-chunked, so uneven item
// costs (e.g. Figure 8's n=1024 point vs its n=2 point) self-balance.
package par

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// InvalidWorkersError reports a negative worker count. Zero is not an
// error: it selects runtime.GOMAXPROCS(0).
type InvalidWorkersError struct {
	Workers int
}

func (e *InvalidWorkersError) Error() string {
	return fmt.Sprintf("par: Workers must be >= 0 (0 = GOMAXPROCS), got %d", e.Workers)
}

// Workers normalizes a requested worker count: 0 selects
// runtime.GOMAXPROCS(0), negative values are rejected with
// *InvalidWorkersError, and anything else passes through. Callers that
// also bound by item count should take min(workers, len(items))
// themselves; Map and ForEach already do.
func Workers(n int) (int, error) {
	if n < 0 {
		return 0, &InvalidWorkersError{Workers: n}
	}
	if n == 0 {
		return runtime.GOMAXPROCS(0), nil
	}
	return n, nil
}

// Map applies f to every item on at most workers goroutines and returns
// the results in input order. workers = 0 uses GOMAXPROCS; workers = 1 is
// fully serial (no goroutines are spawned, so it composes with code that
// must stay single-threaded). The context passed to f is cancelled as soon
// as any invocation fails; f implementations doing long loops should poll
// it. On error, the returned error is the failing invocation with the
// lowest index.
func Map[T, R any](ctx context.Context, workers int, items []T, f func(ctx context.Context, i int, item T) (R, error)) ([]R, error) {
	w, err := Workers(workers)
	if err != nil {
		return nil, err
	}
	results := make([]R, len(items))
	if len(items) == 0 {
		return results, nil
	}
	if w > len(items) {
		w = len(items)
	}
	if w == 1 {
		for i := range items {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := f(ctx, i, items[i])
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		cursor atomic.Int64
		mu     sync.Mutex
		firstI = len(items) // lowest failing index seen so far
		firstE error
		wg     sync.WaitGroup
	)
	fail := func(i int, err error) {
		mu.Lock()
		if i < firstI {
			firstI, firstE = i, err
		}
		mu.Unlock()
		cancel()
	}
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(items) {
					return
				}
				if cctx.Err() != nil {
					// Cancelled before f(i) ever ran: this is not "the
					// failing invocation with the lowest index", so do not
					// record it — either a real f error is already recorded,
					// or the parent cancelled and wg.Wait's fallback below
					// reports that. Recording i here would let a cancellation
					// ripple overwrite the true failure with a lower index.
					return
				}
				r, err := f(cctx, i, items[i])
				if err != nil {
					fail(i, err)
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	if firstE != nil {
		return nil, firstE
	}
	// No f invocation failed, but the parent context may have cancelled
	// the sweep before every item ran.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// ForEach is Map without result collection: f runs once per item on at
// most workers goroutines, the first error cancels the rest, and the
// error from the lowest input index is returned.
func ForEach[T any](ctx context.Context, workers int, items []T, f func(ctx context.Context, i int, item T) error) error {
	_, err := Map(ctx, workers, items, func(ctx context.Context, i int, item T) (struct{}, error) {
		return struct{}{}, f(ctx, i, item)
	})
	return err
}
