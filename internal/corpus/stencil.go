package corpus

import "repro/internal/mpl"

// Stencil2D is a five-point 2D stencil on a width-W process grid: each
// cell exchanges with its row neighbors (guarded by column position) and
// its column neighbors (guarded-boundary no-ops at the grid edges), then
// relaxes. The checkpoint sits at the iteration top, so straight cuts are
// recovery lines as written — this is the "real HPC workload" shape the
// paper's Figure 1 abstracts.
//
// Horizontal sends are guarded by column predicates over rank % W; the
// attribute solver resolves these against the receive guards. Vertical
// exchanges rely on guarded-boundary semantics (out-of-grid peers are
// no-ops). Works for any nproc, including ragged last rows.
func Stencil2D(width, iters int) *mpl.Program {
	return stencil("stencil2d", width, iters, false)
}

// StencilSkewed is the same stencil with a Figure 2-style defect: cells in
// even columns checkpoint before the exchange, odd columns after, so
// straight cuts are NOT recovery lines until Phase III repairs the
// placement. The defect involves modulo-width attributes rather than plain
// parity, exercising the solver beyond the Jacobi examples.
func StencilSkewed(width, iters int) *mpl.Program {
	return stencil("stencil_skewed", width, iters, true)
}

func stencil(name string, width, iters int, skewed bool) *mpl.Program {
	col := mpl.Mod(mpl.Rank(), mpl.V("W"))
	lastCol := mpl.Sub(mpl.V("W"), mpl.Int(1))
	hasLeft := mpl.Neq(col, mpl.Int(0))
	hasRight := mpl.Neq(mpl.Mod(mpl.Rank(), mpl.V("W")), lastCol)
	evenCol := mpl.Eq(mpl.Mod(mpl.Mod(mpl.Rank(), mpl.V("W")), mpl.Int(2)), mpl.Int(0))

	exchange := func(b *mpl.Builder) {
		// Horizontal: async sends first, then receives; guards match the
		// mirrored condition on the peer.
		b.If(mpl.CloneExpr(hasLeft), func(b *mpl.Builder) {
			b.Send(mpl.Sub(mpl.Rank(), mpl.Int(1)), "u")
		})
		b.If(mpl.CloneExpr(hasRight), func(b *mpl.Builder) {
			b.Send(mpl.Add(mpl.Rank(), mpl.Int(1)), "u")
		})
		b.If(mpl.CloneExpr(hasLeft), func(b *mpl.Builder) {
			b.Recv(mpl.Sub(mpl.Rank(), mpl.Int(1)), "ul")
		})
		b.If(mpl.CloneExpr(hasRight), func(b *mpl.Builder) {
			b.Recv(mpl.Add(mpl.Rank(), mpl.Int(1)), "ur")
		})
		// Vertical: guarded-boundary no-ops at the top and bottom rows.
		b.Send(mpl.Sub(mpl.Rank(), mpl.V("W")), "u")
		b.Send(mpl.Add(mpl.Rank(), mpl.V("W")), "u")
		b.Recv(mpl.Sub(mpl.Rank(), mpl.V("W")), "uu")
		b.Recv(mpl.Add(mpl.Rank(), mpl.V("W")), "ud")
	}

	b := mpl.NewBuilder(name).
		Const("W", width).
		Const("ITERS", iters).
		Vars("u", "ul", "ur", "uu", "ud", "it").
		Assign("u", mpl.Mul(mpl.Add(mpl.Rank(), mpl.Int(1)), mpl.Int(10))).
		Assign("it", mpl.Int(0))
	b.While(mpl.Lt(mpl.V("it"), mpl.V("ITERS")), func(b *mpl.Builder) {
		if skewed {
			// Figure 2's defect on the grid: even columns checkpoint
			// before exchanging, odd columns after (balanced counts, both
			// branches carry the exchange).
			b.IfElse(mpl.CloneExpr(evenCol),
				func(b *mpl.Builder) {
					b.Chkpt()
					exchange(b)
				},
				func(b *mpl.Builder) {
					exchange(b)
					b.Chkpt()
				})
		} else {
			b.Chkpt()
			exchange(b)
		}
		b.Assign("u", mpl.Div(
			mpl.Add(mpl.Add(mpl.Add(mpl.Add(mpl.V("u"), mpl.V("ul")), mpl.V("ur")), mpl.V("uu")), mpl.V("ud")),
			mpl.Int(5)))
		b.Assign("it", mpl.Add(mpl.V("it"), mpl.Int(1)))
	})
	return b.MustProgram()
}
