package corpus

import (
	"math/rand"
	"strconv"

	"repro/internal/mpl"
)

// Random generates a deterministic, deadlock-free SPMD program from a
// seed, for property-based testing of the transformation pipeline and the
// runtime. Programs are composed from communication motifs that are safe
// under asynchronous sends and blocking receives for EVERY process count,
// interleaved with computation and randomly placed checkpoint statements
// (possibly unsafe placements — that is the point: Phase III must repair
// them).
func Random(seed int64) *mpl.Program {
	r := rand.New(rand.NewSource(seed))
	b := mpl.NewBuilder("random_" + strconv.FormatInt(seed, 10))
	b.Vars("a", "c", "tmp", "iter")

	iters := 1 + r.Intn(3)
	b.Const("ITERS", iters)
	b.Assign("a", mpl.Add(mpl.Rank(), mpl.Int(1)))
	b.Assign("iter", mpl.Int(0))

	motifs := 1 + r.Intn(3)
	b.While(mpl.Lt(mpl.V("iter"), mpl.V("ITERS")), func(b *mpl.Builder) {
		for m := 0; m < motifs; m++ {
			emitMotif(b, r)
		}
		b.Assign("iter", mpl.Add(mpl.V("iter"), mpl.Int(1)))
	})
	if r.Intn(2) == 0 {
		b.Chkpt()
		b.Assign("a", mpl.Add(mpl.V("a"), mpl.Int(1)))
	}
	return b.MustProgram()
}

// emitMotif appends one random communication motif, optionally sprinkling
// checkpoint statements at positions that may break Condition 1.
func emitMotif(b *mpl.Builder, r *rand.Rand) {
	maybeChkpt := func(b *mpl.Builder, prob float64) {
		if r.Float64() < prob {
			b.Chkpt()
		}
	}
	switch r.Intn(5) {
	case 0:
		// Even/odd paired exchange (the Figure 2 shape): even ranks talk
		// to their right neighbor; checkpoints may land on either side of
		// the communication.
		evenCk := r.Intn(2) == 0
		oddCk := r.Intn(2) == 0
		b.IfElse(mpl.Eq(mpl.Mod(mpl.Rank(), mpl.Int(2)), mpl.Int(0)),
			func(b *mpl.Builder) {
				if evenCk {
					b.Chkpt()
				}
				b.Send(mpl.Add(mpl.Rank(), mpl.Int(1)), "a")
				b.Recv(mpl.Add(mpl.Rank(), mpl.Int(1)), "tmp")
				if !evenCk {
					b.Chkpt()
				}
			},
			func(b *mpl.Builder) {
				b.Recv(mpl.Sub(mpl.Rank(), mpl.Int(1)), "tmp")
				if oddCk {
					b.Chkpt()
				}
				b.Send(mpl.Sub(mpl.Rank(), mpl.Int(1)), "a")
				if !oddCk {
					b.Chkpt()
				}
			})
		b.Assign("a", mpl.Add(mpl.V("a"), mpl.V("tmp")))
	case 1:
		// Ring shift: everyone sends right, receives from the left.
		// Asynchronous sends make this deadlock-free.
		maybeChkpt(b, 0.5)
		b.Send(mpl.Mod(mpl.Add(mpl.Rank(), mpl.Int(1)), mpl.Nproc()), "a")
		b.Recv(mpl.Mod(mpl.Sub(mpl.Rank(), mpl.Int(1)), mpl.Nproc()), "tmp")
		maybeChkpt(b, 0.5)
		b.Assign("a", mpl.Add(mpl.V("a"), mpl.V("tmp")))
	case 2:
		// Broadcast from rank 0 plus local compute.
		maybeChkpt(b, 0.3)
		b.Assign("c", mpl.Add(mpl.V("a"), mpl.Int(1)))
		b.Bcast(mpl.Int(0), "c")
		maybeChkpt(b, 0.3)
		b.Assign("a", mpl.Add(mpl.V("a"), mpl.V("c")))
	case 3:
		// Allreduce: contribute, reduce to rank 0, broadcast back.
		maybeChkpt(b, 0.4)
		b.Assign("c", mpl.V("a"))
		b.Reduce(mpl.Int(0), "c")
		b.Bcast(mpl.Int(0), "c")
		maybeChkpt(b, 0.4)
		b.Assign("a", mpl.Add(mpl.V("a"), mpl.V("c")))
	case 4:
		// Halves pipeline (works for odd process counts too: the last odd
		// rank sits out).
		half := mpl.Div(mpl.Nproc(), mpl.Int(2))
		sendCk := r.Intn(2) == 0
		b.IfElse(mpl.Lt(mpl.Rank(), half),
			func(b *mpl.Builder) {
				if sendCk {
					b.Chkpt()
				}
				b.Send(mpl.Add(mpl.Rank(), half), "a")
				if !sendCk {
					b.Chkpt()
				}
			},
			func(b *mpl.Builder) {
				b.If(mpl.Lt(mpl.Rank(), mpl.Mul(mpl.Int(2), half)), func(b *mpl.Builder) {
					b.Recv(mpl.Sub(mpl.Rank(), half), "tmp")
					b.Assign("a", mpl.Add(mpl.V("a"), mpl.V("tmp")))
				})
				b.Chkpt()
			})
	}
	b.Work(mpl.Int(1 + r.Intn(3)))
}
