// Package corpus holds the canonical MPL programs used across tests,
// examples, and benchmarks: the paper's two Jacobi variants (Figures 1 and
// 2) and a set of additional SPMD communication patterns that exercise the
// analyses. Programs are built fresh on every call so callers may mutate
// them freely.
package corpus

import "repro/internal/mpl"

// JacobiFig1 is the paper's Figure 1: a Jacobi iteration where every
// process takes its checkpoint at the same place (top of the loop) before
// exchanging with neighbors. Every straight cut of checkpoints is a
// recovery line as-is.
//
// The neighbor exchange uses guarded-boundary semantics: sends/receives
// with peers outside [0, nproc) are no-ops.
func JacobiFig1(iters int) *mpl.Program {
	return mpl.NewBuilder("jacobi_fig1").
		Const("MAXITER", iters).
		Vars("x", "xl", "xr", "iter").
		Assign("x", mpl.Add(mpl.Rank(), mpl.Int(1))).
		Assign("iter", mpl.Int(0)).
		While(mpl.Lt(mpl.V("iter"), mpl.V("MAXITER")), func(b *mpl.Builder) {
			b.Chkpt()
			b.Send(mpl.Sub(mpl.Rank(), mpl.Int(1)), "x")
			b.Send(mpl.Add(mpl.Rank(), mpl.Int(1)), "x")
			b.Recv(mpl.Sub(mpl.Rank(), mpl.Int(1)), "xl")
			b.Recv(mpl.Add(mpl.Rank(), mpl.Int(1)), "xr")
			b.Assign("x", mpl.Div(mpl.Add(mpl.Add(mpl.V("x"), mpl.V("xl")), mpl.V("xr")), mpl.Int(3)))
			b.Assign("iter", mpl.Add(mpl.V("iter"), mpl.Int(1)))
		}).
		MustProgram()
}

// JacobiFig2 is the paper's Figure 2: the same Jacobi computation, but the
// checkpoint statement is NOT at the same place for every process — even
// ranks checkpoint before the exchange, odd ranks after. As the paper's
// Figure 3 execution shows, straight cuts of checkpoints are then not
// recovery lines: an even process's checkpoint happens-before its odd
// neighbor's.
//
// Communication is paired so the exchange cannot deadlock: even ranks send
// right then receive right; odd ranks receive left then send left.
func JacobiFig2(iters int) *mpl.Program {
	return mpl.NewBuilder("jacobi_fig2").
		Const("MAXITER", iters).
		Vars("x", "y", "iter").
		Assign("x", mpl.Add(mpl.Rank(), mpl.Int(1))).
		Assign("iter", mpl.Int(0)).
		While(mpl.Lt(mpl.V("iter"), mpl.V("MAXITER")), func(b *mpl.Builder) {
			b.IfElse(mpl.Eq(mpl.Mod(mpl.Rank(), mpl.Int(2)), mpl.Int(0)),
				func(b *mpl.Builder) {
					b.Chkpt()
					b.Send(mpl.Add(mpl.Rank(), mpl.Int(1)), "x")
					b.Recv(mpl.Add(mpl.Rank(), mpl.Int(1)), "y")
				},
				func(b *mpl.Builder) {
					b.Recv(mpl.Sub(mpl.Rank(), mpl.Int(1)), "y")
					b.Send(mpl.Sub(mpl.Rank(), mpl.Int(1)), "x")
					b.Chkpt()
				})
			b.Assign("x", mpl.Div(mpl.Add(mpl.V("x"), mpl.V("y")), mpl.Int(2)))
			b.Assign("iter", mpl.Add(mpl.V("iter"), mpl.Int(1)))
		}).
		MustProgram()
}

// Ring is a token-passing ring: rank 0 seeds a token that travels around
// the ring ROUNDS times; every process checkpoints once per round after
// forwarding. Exercises transitive (multi-hop) causality between
// checkpoints.
func Ring(rounds int) *mpl.Program {
	return mpl.NewBuilder("ring").
		Const("ROUNDS", rounds).
		Vars("tok", "r").
		Assign("r", mpl.Int(0)).
		While(mpl.Lt(mpl.V("r"), mpl.V("ROUNDS")), func(b *mpl.Builder) {
			b.IfElse(mpl.Eq(mpl.Rank(), mpl.Int(0)),
				func(b *mpl.Builder) {
					b.Assign("tok", mpl.Add(mpl.V("tok"), mpl.Int(1)))
					b.Send(mpl.Int(1), "tok")
					b.Chkpt()
					b.Recv(mpl.Sub(mpl.Nproc(), mpl.Int(1)), "tok")
				},
				func(b *mpl.Builder) {
					b.Recv(mpl.Sub(mpl.Rank(), mpl.Int(1)), "tok")
					b.Send(mpl.Mod(mpl.Add(mpl.Rank(), mpl.Int(1)), mpl.Nproc()), "tok")
					b.Chkpt()
				})
			b.Assign("r", mpl.Add(mpl.V("r"), mpl.Int(1)))
		}).
		MustProgram()
}

// MasterWorker is a master/worker pattern: rank 0 broadcasts work, workers
// compute and send results back, everyone checkpoints between rounds at
// the same program point.
func MasterWorker(rounds int) *mpl.Program {
	return mpl.NewBuilder("masterworker").
		Const("ROUNDS", rounds).
		Vars("task", "result", "acc", "r", "w").
		Assign("r", mpl.Int(0)).
		While(mpl.Lt(mpl.V("r"), mpl.V("ROUNDS")), func(b *mpl.Builder) {
			b.Chkpt()
			b.Assign("task", mpl.Add(mpl.V("r"), mpl.Int(1))).
				Bcast(mpl.Int(0), "task")
			b.IfElse(mpl.Eq(mpl.Rank(), mpl.Int(0)),
				func(b *mpl.Builder) {
					b.Assign("w", mpl.Int(1))
					b.While(mpl.Lt(mpl.V("w"), mpl.Nproc()), func(b *mpl.Builder) {
						b.Recv(mpl.V("w"), "result")
						b.Assign("acc", mpl.Add(mpl.V("acc"), mpl.V("result")))
						b.Assign("w", mpl.Add(mpl.V("w"), mpl.Int(1)))
					})
				},
				func(b *mpl.Builder) {
					b.Assign("result", mpl.Mul(mpl.V("task"), mpl.Rank()))
					b.Send(mpl.Int(0), "result")
				})
			b.Assign("r", mpl.Add(mpl.V("r"), mpl.Int(1)))
		}).
		MustProgram()
}

// Irregular sends to a data-dependent destination (the paper's "irregular
// computation pattern", §3.2): the matching phase must conservatively
// match such sends with every receive they could feed.
func Irregular() *mpl.Program {
	return mpl.NewBuilder("irregular").
		Vars("v", "dst").
		Chkpt().
		IfElse(mpl.Eq(mpl.Rank(), mpl.Int(0)),
			func(b *mpl.Builder) {
				b.Assign("dst", mpl.Add(mpl.InputAt(mpl.Int(0)), mpl.Int(1)))
				b.Send(mpl.V("dst"), "v")
			},
			func(b *mpl.Builder) {
				b.Recv(mpl.Int(0), "v")
			}).
		Chkpt().
		MustProgram()
}

// PipelineStages is a two-phase pipeline where stage boundaries shift the
// checkpoint location between halves of the machine; the second half
// checkpoints only after receiving, so untransformed straight cuts are
// inconsistent.
func PipelineStages(iters int) *mpl.Program {
	half := mpl.Div(mpl.Nproc(), mpl.Int(2))
	return mpl.NewBuilder("pipeline").
		Const("MAXITER", iters).
		Vars("data", "iter").
		Assign("iter", mpl.Int(0)).
		While(mpl.Lt(mpl.V("iter"), mpl.V("MAXITER")), func(b *mpl.Builder) {
			b.IfElse(mpl.Lt(mpl.Rank(), half),
				func(b *mpl.Builder) {
					b.Chkpt()
					b.Assign("data", mpl.Add(mpl.V("data"), mpl.Rank()))
					b.Send(mpl.Add(mpl.Rank(), half), "data")
				},
				func(b *mpl.Builder) {
					b.Recv(mpl.Sub(mpl.Rank(), half), "data")
					b.Chkpt()
				})
			b.Assign("iter", mpl.Add(mpl.V("iter"), mpl.Int(1)))
		}).
		MustProgram()
}

// AllReduce composes the two collectives into the classic allreduce
// pattern: each round, every process contributes its accumulator to a
// reduce at rank 0, the sum is broadcast back, and everyone folds it in.
// All processes compute identical totals, deterministically.
func AllReduce(rounds int) *mpl.Program {
	return mpl.NewBuilder("allreduce").
		Const("ROUNDS", rounds).
		Vars("acc", "tot", "r").
		Assign("acc", mpl.Add(mpl.Rank(), mpl.Int(1))).
		Assign("r", mpl.Int(0)).
		While(mpl.Lt(mpl.V("r"), mpl.V("ROUNDS")), func(b *mpl.Builder) {
			b.Chkpt()
			b.Assign("tot", mpl.V("acc"))
			b.Reduce(mpl.Int(0), "tot")
			b.Bcast(mpl.Int(0), "tot")
			b.Assign("acc", mpl.Add(mpl.V("acc"), mpl.V("tot")))
			b.Assign("r", mpl.Add(mpl.V("r"), mpl.Int(1)))
		}).
		MustProgram()
}

// ZigzagProne is the canonical useless-checkpoint pattern (Netzer & Xu):
// even ranks checkpoint BETWEEN receiving and sending, while their odd
// partners send and then receive with no checkpoint in between. Every even
// checkpoint then lies on a Z-cycle — it belongs to no consistent global
// snapshot at all, which is strictly worse than Figure 2's placement
// (whose checkpoints are merely not straight-cut-aligned). Phase III
// repairs it by moving the even checkpoint before the receive.
func ZigzagProne(iters int) *mpl.Program {
	return mpl.NewBuilder("zigzagprone").
		Const("MAXITER", iters).
		Vars("a", "b", "iter").
		Assign("iter", mpl.Int(0)).
		While(mpl.Lt(mpl.V("iter"), mpl.V("MAXITER")), func(b *mpl.Builder) {
			b.IfElse(mpl.Eq(mpl.Mod(mpl.Rank(), mpl.Int(2)), mpl.Int(0)),
				func(b *mpl.Builder) {
					b.Recv(mpl.Add(mpl.Rank(), mpl.Int(1)), "a")
					b.Chkpt()
					b.Send(mpl.Add(mpl.Rank(), mpl.Int(1)), "b")
				},
				func(b *mpl.Builder) {
					b.Chkpt()
					b.Send(mpl.Sub(mpl.Rank(), mpl.Int(1)), "a")
					b.Recv(mpl.Sub(mpl.Rank(), mpl.Int(1)), "b")
				})
			b.Assign("iter", mpl.Add(mpl.V("iter"), mpl.Int(1)))
		}).
		MustProgram()
}

// All returns every corpus program (with small iteration counts), keyed by
// name, for sweep-style tests.
func All() map[string]*mpl.Program {
	return map[string]*mpl.Program{
		"jacobi_fig1":  JacobiFig1(3),
		"jacobi_fig2":  JacobiFig2(3),
		"ring":         Ring(3),
		"masterworker": MasterWorker(3),
		"irregular":    Irregular(),
		"pipeline":     PipelineStages(3),
		"zigzagprone":  ZigzagProne(3),
		"allreduce":    AllReduce(3),
		"stencil2d":    Stencil2D(3, 2),
		"stencilskew":  StencilSkewed(3, 2),
	}
}
