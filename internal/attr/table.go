package attr

import "math/bits"

// This file is the solver's memoized fast path. CanMatch enumerates
// (n, p, q) triples and re-evaluates both path attributes and both
// parameter expressions inside the innermost loop — a tree-walking Eval
// per probe. Phase II calls CanMatch once per send×receive pair per
// fixpoint round, so the same per-node predicates and parameters are
// re-evaluated thousands of times across a Transform.
//
// A Table precomputes, once per node, everything CanMatch ever asks about
// it: a per-n bitmask of the ranks where the path attribute holds, and a
// per-(n, rank) value table for the parameter. CanMatchTables then decides
// a pair with pure bit iteration and array lookups — no Eval calls — and
// is exactly equivalent to CanMatch (asserted by TestTableEquivalence).

// tableNoValue marks a rank where the parameter imposes no equation:
// wildcard parameters everywhere, and ranks where evaluation errs (EvalAt
// reports ok=false, which CanMatch treats as "no constraint").
const tableNoValue = int64(-1 << 62)

// Table is the precomputed view of one node's (path attribute, parameter)
// pair over the solver's bounded enumeration.
type Table struct {
	lo, hi int
	// back packs the whole table into one allocation: the first hi-lo+1
	// entries are hold bitmasks (back[n-lo] bit p set ⇔ predicate holds at
	// (p, n), stored as int64), followed by the value rows at stride hi
	// (value at (p, n) is back[(hi-lo+1)+(n-lo)*hi+p]).
	back []int64
}

// holdMask returns the predicate bitmask for row i = n-lo.
func (t *Table) holdMask(i int) uint64 { return uint64(t.back[i]) }

// valRow returns the parameter-value row for row i = n-lo.
func (t *Table) valRow(i int) []int64 {
	off := (t.hi - t.lo + 1) + i*t.hi
	return t.back[off : off+t.hi]
}

// Table precomputes pr and param over the solver's bounds. It returns nil
// when the bounds exceed the 64-rank bitmask representation (MaxProcs >
// 64); callers fall back to CanMatch.
func (s Solver) Table(pr Predicate, param Param) *Table {
	t := &Table{}
	if !s.TableInto(pr, param, t) {
		return nil
	}
	return t
}

// SlabTables returns n empty Tables whose backings are carved from one
// shared allocation sized for this solver's bounds — two allocations for
// the whole batch instead of two per table. Fill them with TableInto. The
// result is nil when the bounds exceed the table representation (callers
// fall back to CanMatch anyway).
func (s Solver) SlabTables(n int) []Table {
	lo, hi := s.bounds()
	if hi > 64 || n <= 0 {
		return nil
	}
	k := hi - lo + 1
	need := k + k*hi
	back := make([]int64, n*need)
	ts := make([]Table, n)
	for i := range ts {
		ts[i] = Table{back: back[i*need : i*need : (i+1)*need]}
	}
	return ts
}

// TableInto is Table into caller-owned storage: it fills *t, reusing
// t.back when it is large enough, and reports whether the bounds fit the
// table representation. Callers batching many tables (the matcher builds
// one per communication node) can slab-allocate the Table values
// themselves (SlabTables) and pay no per-table allocation at all.
func (s Solver) TableInto(pr Predicate, param Param, t *Table) bool {
	lo, hi := s.bounds()
	if hi > 64 {
		return false
	}
	k := hi - lo + 1
	need := k + k*hi
	t.lo, t.hi = lo, hi
	if cap(t.back) >= need {
		t.back = t.back[:need]
	} else {
		t.back = make([]int64, need)
	}
	for n := lo; n <= hi; n++ {
		i := n - lo
		row := t.valRow(i)
		var mask uint64
		for p := 0; p < n; p++ {
			if pr.HoldsAt(p, n) {
				mask |= 1 << uint(p)
			}
			if v, ok := param.EvalAt(p, n); ok {
				row[p] = int64(v)
			} else {
				row[p] = tableNoValue
			}
		}
		// Slots past n are never consulted (mask bits only cover p < n);
		// zero them anyway so a reused backing yields a deterministic table.
		for p := n; p < hi; p++ {
			row[p] = 0
		}
		t.back[i] = int64(mask)
	}
	return true
}

// CanMatchTables is CanMatch over precomputed tables: ∃ n, ∃ p ≠ q with
// send's attribute at p, recv's at q, send's parameter (the destination)
// evaluating to q at p, and recv's parameter (the source) evaluating to p
// at q — where a wildcard or erroring parameter imposes no equation. Both
// tables must come from the same Solver bounds.
func CanMatchTables(send, recv *Table) bool {
	for i := 0; i <= send.hi-send.lo; i++ {
		sh, rh := send.holdMask(i), recv.holdMask(i)
		if sh == 0 || rh == 0 {
			continue
		}
		sv, rv := send.valRow(i), recv.valRow(i)
		for sw := sh; sw != 0; sw &= sw - 1 {
			p := bits.TrailingZeros64(sw)
			d := sv[p]
			for rw := rh; rw != 0; rw &= rw - 1 {
				q := bits.TrailingZeros64(rw)
				if q == p {
					continue
				}
				if d != tableNoValue && d != int64(q) {
					continue
				}
				if src := rv[q]; src != tableNoValue && src != int64(p) {
					continue
				}
				return true
			}
		}
	}
	return false
}
