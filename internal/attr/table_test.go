package attr

import (
	"math/rand"
	"testing"

	"repro/internal/mpl"
)

// randExpr builds a random closed expression over rank/nproc, including
// shapes that err at some ranks (division/mod by rank-dependent values).
func randExpr(r *rand.Rand, depth int) mpl.Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		switch r.Intn(3) {
		case 0:
			return mpl.Rank()
		case 1:
			return mpl.Nproc()
		default:
			return mpl.Int(r.Intn(7) - 2)
		}
	}
	l, rr := randExpr(r, depth-1), randExpr(r, depth-1)
	switch r.Intn(7) {
	case 0:
		return mpl.Add(l, rr)
	case 1:
		return mpl.Sub(l, rr)
	case 2:
		return mpl.Mul(l, rr)
	case 3:
		return mpl.Div(l, rr)
	case 4:
		return mpl.Mod(l, rr)
	case 5:
		return mpl.Eq(l, rr)
	default:
		return mpl.Lt(l, rr)
	}
}

func randPredicate(r *rand.Rand) Predicate {
	var pr Predicate
	for k := r.Intn(3); k > 0; k-- {
		pr = pr.And(Constraint{Cond: randExpr(r, 2), Want: r.Intn(2) == 0})
	}
	return pr
}

func randParam(r *rand.Rand) Param {
	if r.Intn(4) == 0 {
		return WildcardParam
	}
	return ExprParam(randExpr(r, 2))
}

// TestTableEquivalence is the contract of the memoized fast path: for any
// predicate/parameter pair, CanMatchTables must agree with CanMatch.
func TestTableEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	solvers := []Solver{DefaultSolver, {MinProcs: 1, MaxProcs: 5}, {MinProcs: 3, MaxProcs: 3}}
	for trial := 0; trial < 2000; trial++ {
		s := solvers[trial%len(solvers)]
		sendPath, recvPath := randPredicate(r), randPredicate(r)
		dest, src := randParam(r), randParam(r)
		want := s.CanMatch(sendPath, dest, recvPath, src)
		st := s.Table(sendPath, dest)
		rt := s.Table(recvPath, src)
		if st == nil || rt == nil {
			t.Fatal("Table returned nil within 64-rank bounds")
		}
		if got := CanMatchTables(st, rt); got != want {
			t.Fatalf("trial %d (solver %+v): CanMatchTables = %v, CanMatch = %v\nsend %s dest %s\nrecv %s src %s",
				trial, s, got, want, sendPath, dest, recvPath, src)
		}
	}
}

// TestTableWideBoundsFallback pins the nil fallback above 64 ranks.
func TestTableWideBoundsFallback(t *testing.T) {
	s := Solver{MinProcs: 2, MaxProcs: 65}
	if s.Table(nil, WildcardParam) != nil {
		t.Error("Table should decline MaxProcs > 64")
	}
	if s64 := (Solver{MinProcs: 2, MaxProcs: 64}); s64.Table(nil, WildcardParam) == nil {
		t.Error("Table should accept MaxProcs = 64")
	}
}
