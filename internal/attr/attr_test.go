package attr

import (
	"testing"
	"testing/quick"

	"repro/internal/mpl"
)

func even() Constraint {
	return Constraint{Cond: mpl.Eq(mpl.Mod(mpl.Rank(), mpl.Int(2)), mpl.Int(0)), Want: true}
}

func odd() Constraint {
	return Constraint{Cond: mpl.Eq(mpl.Mod(mpl.Rank(), mpl.Int(2)), mpl.Int(0)), Want: false}
}

func TestPredicateHoldsAt(t *testing.T) {
	pEven := Predicate{even()}
	pOdd := Predicate{odd()}
	if !pEven.HoldsAt(2, 8) || pEven.HoldsAt(3, 8) {
		t.Error("even predicate wrong")
	}
	if !pOdd.HoldsAt(3, 8) || pOdd.HoldsAt(2, 8) {
		t.Error("odd predicate wrong")
	}
	if !(Predicate)(nil).HoldsAt(0, 2) {
		t.Error("empty predicate must be true")
	}
}

func TestPredicateAndDoesNotMutate(t *testing.T) {
	p := Predicate{even()}
	q := p.And(Constraint{Cond: mpl.Lt(mpl.Rank(), mpl.Int(4)), Want: true})
	if len(p) != 1 || len(q) != 2 {
		t.Fatalf("lens = %d, %d", len(p), len(q))
	}
	if !q.HoldsAt(2, 8) || q.HoldsAt(6, 8) {
		t.Error("And result wrong")
	}
}

func TestPredicateEvalErrorIsFalse(t *testing.T) {
	p := Predicate{{Cond: mpl.Eq(mpl.Div(mpl.Int(1), mpl.Sub(mpl.Rank(), mpl.Int(1))), mpl.Int(1)), Want: true}}
	// At rank 1 the condition divides by zero: predicate must be false, not
	// crash.
	if p.HoldsAt(1, 4) {
		t.Error("eval error should make predicate false")
	}
	if !p.HoldsAt(2, 4) { // 1/(2-1) == 1
		t.Error("predicate should hold at rank 2")
	}
}

func TestParamEval(t *testing.T) {
	p := ExprParam(mpl.Add(mpl.Rank(), mpl.Int(1)))
	v, ok := p.EvalAt(3, 8)
	if !ok || v != 4 {
		t.Errorf("EvalAt = %d, %v", v, ok)
	}
	if _, ok := WildcardParam.EvalAt(0, 2); ok {
		t.Error("wildcard must not evaluate")
	}
	if WildcardParam.String() != "*" {
		t.Errorf("wildcard String = %q", WildcardParam.String())
	}
}

func TestCanMatchEvenOddNeighbors(t *testing.T) {
	s := DefaultSolver
	// Even sends to rank+1; odd receives from rank-1. Compatible.
	if !s.CanMatch(
		Predicate{even()}, ExprParam(mpl.Add(mpl.Rank(), mpl.Int(1))),
		Predicate{odd()}, ExprParam(mpl.Sub(mpl.Rank(), mpl.Int(1)))) {
		t.Error("even->odd neighbor match should succeed")
	}
	// Even sends to rank+1; even receives from rank-1: receiver would be
	// odd, contradicting the receiver's even attribute.
	if s.CanMatch(
		Predicate{even()}, ExprParam(mpl.Add(mpl.Rank(), mpl.Int(1))),
		Predicate{even()}, ExprParam(mpl.Sub(mpl.Rank(), mpl.Int(1)))) {
		t.Error("even->even with +1/-1 must contradict")
	}
}

func TestCanMatchContradictingEquations(t *testing.T) {
	s := DefaultSolver
	// Sender targets rank+1 but receiver expects source rank+1 (i.e. its
	// own successor): needs q = p+1 and p = q+1 simultaneously.
	if s.CanMatch(
		nil, ExprParam(mpl.Add(mpl.Rank(), mpl.Int(1))),
		nil, ExprParam(mpl.Add(mpl.Rank(), mpl.Int(1)))) {
		t.Error("p+1=q && q+1=p must be unsatisfiable")
	}
	// Sender targets rank+1, receiver expects rank-1: q = p+1 and p = q-1.
	if !s.CanMatch(
		nil, ExprParam(mpl.Add(mpl.Rank(), mpl.Int(1))),
		nil, ExprParam(mpl.Sub(mpl.Rank(), mpl.Int(1)))) {
		t.Error("p+1=q && q-1=p must be satisfiable")
	}
}

func TestCanMatchWildcard(t *testing.T) {
	s := DefaultSolver
	// Irregular destination matches any receive whose attributes are
	// satisfiable.
	if !s.CanMatch(nil, WildcardParam, nil, ExprParam(mpl.Int(0))) {
		t.Error("wildcard dest should match")
	}
	// But a contradictory receiver path still blocks the match.
	never := Predicate{{Cond: mpl.Lt(mpl.Rank(), mpl.Int(0)), Want: true}}
	if s.CanMatch(nil, WildcardParam, never, WildcardParam) {
		t.Error("unsatisfiable receiver path must block match")
	}
}

func TestCanMatchFixedRanks(t *testing.T) {
	s := DefaultSolver
	// Rank 0 sends to rank 1, rank 1 receives from 0.
	zero := Predicate{{Cond: mpl.Eq(mpl.Rank(), mpl.Int(0)), Want: true}}
	one := Predicate{{Cond: mpl.Eq(mpl.Rank(), mpl.Int(1)), Want: true}}
	if !s.CanMatch(zero, ExprParam(mpl.Int(1)), one, ExprParam(mpl.Int(0))) {
		t.Error("0->1 fixed match should succeed")
	}
	// Rank 0 sends to rank 2, but receiver claims to be rank 1.
	if s.CanMatch(zero, ExprParam(mpl.Int(2)), one, ExprParam(mpl.Int(0))) {
		t.Error("dest 2 cannot match receiver rank 1")
	}
}

func TestCanMatchExcludesSelf(t *testing.T) {
	s := DefaultSolver
	// dest = rank means self-send; no distinct pair can satisfy it.
	if s.CanMatch(nil, ExprParam(mpl.Rank()), nil, WildcardParam) {
		t.Error("self-send must not match (p != q required)")
	}
}

func TestCanMatchOutOfRangeDest(t *testing.T) {
	s := Solver{MinProcs: 2, MaxProcs: 4}
	// dest = nproc is always out of range: a guarded-boundary no-op, so no
	// receive can observe it.
	if s.CanMatch(nil, ExprParam(mpl.Nproc()), nil, WildcardParam) {
		t.Error("out-of-range destination must never match")
	}
}

func TestSatisfiable(t *testing.T) {
	s := DefaultSolver
	if !s.Satisfiable(Predicate{even()}) {
		t.Error("even ranks exist")
	}
	never := Predicate{even(), odd()}
	if s.Satisfiable(never) {
		t.Error("even && odd is unsatisfiable")
	}
}

func TestCoSatisfiable(t *testing.T) {
	s := DefaultSolver
	if !s.CoSatisfiable(Predicate{even()}, Predicate{odd()}) {
		t.Error("even and odd ranks coexist")
	}
	// rank==0 for both processes: cannot hold at two distinct ranks.
	zero := Predicate{{Cond: mpl.Eq(mpl.Rank(), mpl.Int(0)), Want: true}}
	if s.CoSatisfiable(zero, zero) {
		t.Error("rank==0 twice cannot co-hold")
	}
	if !s.CoSatisfiable(zero, Predicate{odd()}) {
		t.Error("rank 0 and an odd rank coexist")
	}
}

func TestSolverBoundsDefaults(t *testing.T) {
	var s Solver // zero value: bounds default sensibly
	if !s.Satisfiable(nil) {
		t.Error("zero-value solver should work")
	}
	lo, hi := s.bounds()
	if lo < 1 || hi < lo {
		t.Errorf("bounds = %d, %d", lo, hi)
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(mpl.Add(mpl.Rank(), mpl.Nproc())); err != nil {
		t.Errorf("closed expr rejected: %v", err)
	}
	if err := Validate(mpl.V("x")); err == nil {
		t.Error("variable accepted as closed")
	}
	if err := Validate(mpl.InputAt(mpl.Int(0))); err == nil {
		t.Error("input accepted as closed")
	}
}

func TestQuickCanMatchSymmetryWitness(t *testing.T) {
	// Whenever CanMatch succeeds with concrete fixed-rank params, an
	// explicit witness exists; cross-check the solver against brute force.
	f := func(a, b uint8) bool {
		s := Solver{MinProcs: 2, MaxProcs: 9}
		pa, pb := int(a%9), int(b%9)
		got := s.CanMatch(nil, ExprParam(mpl.Int(pb)), nil, ExprParam(mpl.Int(pa)))
		// Brute force: need n in [2,9], p=pa, q=pb distinct, both < n.
		want := pa != pb && pa < 9 && pb < 9
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkCanMatch(b *testing.B) {
	s := DefaultSolver
	sendPath := Predicate{even()}
	recvPath := Predicate{odd()}
	dest := ExprParam(mpl.Add(mpl.Rank(), mpl.Int(1)))
	src := ExprParam(mpl.Sub(mpl.Rank(), mpl.Int(1)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !s.CanMatch(sendPath, dest, recvPath, src) {
			b.Fatal("match failed")
		}
	}
}
