// Package attr implements the attribute algebra of the paper's §3.2. A
// control path out of an ID-dependent branch is characterized by an
// attribute — here a predicate over (rank, nproc) formed from the branch
// conditions along the path. Send/receive parameters (destination/source)
// resolve to integer expressions over (rank, nproc), or to wildcards when
// they are irregular (data-dependent) patterns.
//
// "SA and DA do not contradict" (Algorithm 3.1) becomes a satisfiability
// question: do there exist a process count n and two distinct ranks p, q
// such that the sender's path attribute holds at p, the receiver's at q,
// the send destination evaluates to q, and the receive source to p? The
// Solver decides this by exact bounded enumeration over n, which is
// complete for the modular-arithmetic rank patterns SPMD programs use.
package attr

import (
	"fmt"
	"strings"

	"repro/internal/mpl"
)

// Param is a resolved communication parameter: a closed integer expression
// over rank and nproc, or a wildcard when the parameter is irregular
// (depends on input data or on values not statically derivable).
type Param struct {
	Expr     mpl.Expr // nil iff Wildcard
	Wildcard bool
}

// WildcardParam is the irregular parameter.
var WildcardParam = Param{Wildcard: true}

// ExprParam wraps a closed expression as a parameter.
func ExprParam(e mpl.Expr) Param { return Param{Expr: e} }

// EvalAt evaluates the parameter for a process. ok is false for wildcards
// and for evaluation errors (e.g. division by zero at this rank).
func (p Param) EvalAt(rank, nproc int) (v int, ok bool) {
	if p.Wildcard || p.Expr == nil {
		return 0, false
	}
	env := &mpl.Env{Rank: rank, Nproc: nproc}
	val, err := mpl.Eval(p.Expr, env)
	if err != nil {
		return 0, false
	}
	return val, true
}

// String renders the parameter.
func (p Param) String() string {
	if p.Wildcard {
		return "*"
	}
	return mpl.ExprString(p.Expr)
}

// Constraint is one branch condition with the polarity the path took.
type Constraint struct {
	Cond mpl.Expr // closed expression over rank/nproc
	Want bool     // true for the True edge, false for the False edge
}

// String renders the constraint.
func (c Constraint) String() string {
	if c.Want {
		return mpl.ExprString(c.Cond)
	}
	return "!(" + mpl.ExprString(c.Cond) + ")"
}

// Predicate is a conjunction of constraints — the attribute of a control
// path (§3.2). The nil Predicate is "true" (no ID-dependent branches
// taken).
type Predicate []Constraint

// And returns the predicate extended with one more constraint. The receiver
// is not mutated.
func (pr Predicate) And(c Constraint) Predicate {
	out := make(Predicate, len(pr)+1)
	copy(out, pr)
	out[len(pr)] = c
	return out
}

// HoldsAt reports whether every constraint holds for the given process.
// Evaluation errors make the predicate false at that rank (such a process
// would crash before communicating).
func (pr Predicate) HoldsAt(rank, nproc int) bool {
	env := &mpl.Env{Rank: rank, Nproc: nproc}
	for _, c := range pr {
		v, err := mpl.Eval(c.Cond, env)
		if err != nil {
			return false
		}
		if (v != 0) != c.Want {
			return false
		}
	}
	return true
}

// String renders the conjunction.
func (pr Predicate) String() string {
	if len(pr) == 0 {
		return "true"
	}
	parts := make([]string, len(pr))
	for i, c := range pr {
		parts[i] = c.String()
	}
	return strings.Join(parts, " && ")
}

// Solver decides attribute satisfiability by enumerating process counts in
// [MinProcs, MaxProcs] and rank pairs within each. The default bounds cover
// the patterns that occur in SPMD rank arithmetic (parity, halves, ring
// neighbors, small constants): if a match exists for any n, it almost
// always exists for some n ≤ 17 (a prime beyond typical modular periods).
type Solver struct {
	MinProcs int
	MaxProcs int
}

// DefaultSolver is the solver with the standard bounds.
var DefaultSolver = Solver{MinProcs: 2, MaxProcs: 17}

// bounds returns the effective enumeration range.
func (s Solver) bounds() (int, int) {
	lo, hi := s.MinProcs, s.MaxProcs
	if lo < 1 {
		lo = 2
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// CanMatch decides whether a send with path attribute sendPath and
// destination parameter dest can deliver a message to a receive with path
// attribute recvPath and source parameter src: ∃ n, ∃ p ≠ q with
// sendPath(p), recvPath(q), dest(p) = q, src(q) = p. Wildcard parameters
// impose no equation (the paper's irregular-pattern rule: match unless the
// attributes contradict).
func (s Solver) CanMatch(sendPath Predicate, dest Param, recvPath Predicate, src Param) bool {
	lo, hi := s.bounds()
	for n := lo; n <= hi; n++ {
		for p := 0; p < n; p++ {
			if !sendPath.HoldsAt(p, n) {
				continue
			}
			for q := 0; q < n; q++ {
				if q == p || !recvPath.HoldsAt(q, n) {
					continue
				}
				if d, ok := dest.EvalAt(p, n); ok && d != q {
					continue
				}
				if sv, ok := src.EvalAt(q, n); ok && sv != p {
					continue
				}
				return true
			}
		}
	}
	return false
}

// Satisfiable reports whether the predicate holds for at least one
// (rank, n) within bounds.
func (s Solver) Satisfiable(pr Predicate) bool {
	lo, hi := s.bounds()
	for n := lo; n <= hi; n++ {
		for p := 0; p < n; p++ {
			if pr.HoldsAt(p, n) {
				return true
			}
		}
	}
	return false
}

// CoSatisfiable reports whether two predicates can hold simultaneously at
// two DISTINCT ranks of the same execution — the paper's "different paths"
// feasibility check for two processes.
func (s Solver) CoSatisfiable(a, b Predicate) bool {
	lo, hi := s.bounds()
	for n := lo; n <= hi; n++ {
		for p := 0; p < n; p++ {
			if !a.HoldsAt(p, n) {
				continue
			}
			for q := 0; q < n; q++ {
				if q != p && b.HoldsAt(q, n) {
					return true
				}
			}
		}
	}
	return false
}

// Validate checks that predicate constraints and parameters are closed
// (mention only rank/nproc and literals); analysis code uses it to guard
// against passing unresolved expressions into the solver.
func Validate(e mpl.Expr) error {
	var bad string
	mpl.WalkExpr(e, func(x mpl.Expr) bool {
		switch n := x.(type) {
		case *mpl.Ident:
			if n.Name != mpl.BuiltinRank && n.Name != mpl.BuiltinNproc {
				bad = n.Name
				return false
			}
		case *mpl.Call:
			bad = n.Name + "(...)"
			return false
		}
		return true
	})
	if bad != "" {
		return fmt.Errorf("attr: expression %q is not closed over (rank, nproc): contains %s",
			mpl.ExprString(e), bad)
	}
	return nil
}
