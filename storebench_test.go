package repro_test

// Store benchmarks: the durability cost of checkpointing at fleet scale.
// BenchmarkStoreAggregateSave is the headline number behind BENCH_store.json:
// 1000 concurrent jobs each persisting one checkpoint into a shared durable
// store. The file store pays two fsyncs per save (data + directory); the WAL
// store's group commit folds concurrent saves into one fsync per batch, which
// is where its aggregate throughput multiple comes from.
// BenchmarkStoreSingleSave is the contrast case — one uncontended saver,
// where batching cannot help and only the per-save protocol differs.

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/storage"
	"repro/internal/storage/wal"
	"repro/internal/vclock"
)

func benchStore(b *testing.B, kind string) storage.Store {
	b.Helper()
	switch kind {
	case "wal":
		ws, err := wal.Open(b.TempDir(), wal.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { ws.Close() })
		return ws
	case "file":
		fs, err := storage.NewFile(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		return fs
	default:
		b.Fatalf("unknown store kind %q", kind)
		return nil
	}
}

func benchSnap(proc, instance int) storage.Snapshot {
	clk := vclock.New(4)
	clk[0] = uint64(instance + 1)
	return storage.Snapshot{
		Proc: proc, CFGIndex: 1, Instance: instance,
		Clock: clk,
		Vars:  map[string]int{"x": proc, "y": instance, "sum": proc + instance},
		PC:    fmt.Sprintf("s%d", instance),
	}
}

// BenchmarkStoreAggregateSave measures fleet-aggregate durable save
// throughput: 1000 concurrent savers per iteration against one shared
// store, every save individually acknowledged-durable before it returns.
func BenchmarkStoreAggregateSave(b *testing.B) {
	const jobs = 1000
	for _, kind := range []string{"wal", "file"} {
		b.Run(kind, func(b *testing.B) {
			st := benchStore(b, kind)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				wg.Add(jobs)
				for j := 0; j < jobs; j++ {
					go func(j int) {
						defer wg.Done()
						if err := st.Save(benchSnap(j, i)); err != nil {
							b.Error(err)
						}
					}(j)
				}
				wg.Wait()
			}
			b.StopTimer()
			b.ReportMetric(float64(jobs)*float64(b.N)/b.Elapsed().Seconds(), "saves/s")
		})
	}
}

// BenchmarkStoreSingleSave measures uncontended save latency — one saver,
// no batching opportunity.
func BenchmarkStoreSingleSave(b *testing.B) {
	for _, kind := range []string{"wal", "file"} {
		b.Run(kind, func(b *testing.B) {
			st := benchStore(b, kind)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := st.Save(benchSnap(0, i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
