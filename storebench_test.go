package repro_test

// Store benchmarks: the durability cost of checkpointing at fleet scale.
// BenchmarkStoreAggregateSave is the headline number behind BENCH_store.json:
// 1000 concurrent jobs each persisting one checkpoint into a shared durable
// store. The file store pays two fsyncs per save (data + directory); the WAL
// store's group commit folds concurrent saves into one fsync per batch, which
// is where its aggregate throughput multiple comes from.
// BenchmarkStoreSingleSave is the contrast case — one uncontended saver,
// where batching cannot help and only the per-save protocol differs.

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"repro/internal/storage"
	"repro/internal/storage/wal"
	"repro/internal/vclock"
)

func benchStore(b *testing.B, kind string) storage.Store {
	b.Helper()
	switch kind {
	case "wal":
		ws, err := wal.Open(b.TempDir(), wal.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { ws.Close() })
		return ws
	case "file":
		fs, err := storage.NewFile(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		return fs
	case "incremental":
		return storage.NewIncremental(8)
	default:
		b.Fatalf("unknown store kind %q", kind)
		return nil
	}
}

func benchSnap(proc, instance int) storage.Snapshot {
	clk := vclock.New(4)
	clk[0] = uint64(instance + 1)
	return storage.Snapshot{
		Proc: proc, CFGIndex: 1, Instance: instance,
		Clock: clk,
		Vars:  map[string]int{"x": proc, "y": instance, "sum": proc + instance},
		PC:    fmt.Sprintf("s%d", instance),
	}
}

// BenchmarkStoreAggregateSave measures fleet-aggregate durable save
// throughput: 1000 concurrent savers per iteration against one shared
// store, every save individually acknowledged-durable before it returns.
func BenchmarkStoreAggregateSave(b *testing.B) {
	const jobs = 1000
	for _, kind := range []string{"wal", "file"} {
		b.Run(kind, func(b *testing.B) {
			st := benchStore(b, kind)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				wg.Add(jobs)
				for j := 0; j < jobs; j++ {
					go func(j int) {
						defer wg.Done()
						if err := st.Save(benchSnap(j, i)); err != nil {
							b.Error(err)
						}
					}(j)
				}
				wg.Wait()
			}
			b.StopTimer()
			b.ReportMetric(float64(jobs)*float64(b.N)/b.Elapsed().Seconds(), "saves/s")
		})
	}
}

// pruneBenchSnap models the liveness-minimized checkpoint shape: a stencil
// process whose environment holds 12 variables of which only 4 are live at
// the checkpoint site (the grid interior was folded into halos and
// accumulators before the site). The pruned variant is exactly what
// sim's runtime persists for an application checkpoint: manifest variables
// only, with the manifest recorded inside the snapshot.
func pruneBenchSnap(proc, instance int, pruned bool) storage.Snapshot {
	clk := vclock.New(4)
	clk[0] = uint64(instance + 1)
	manifest := []string{"acc", "halo_l", "halo_r", "iter"}
	vars := map[string]int{
		"acc": proc + instance, "halo_l": instance, "halo_r": instance + 1, "iter": instance,
	}
	s := storage.Snapshot{
		Proc: proc, CFGIndex: 1, Instance: instance,
		Clock: clk,
		PC:    fmt.Sprintf("s%d", instance),
	}
	if pruned {
		s.Vars, s.Manifest = vars, manifest
		return s
	}
	for i := 0; i < 8; i++ {
		vars[fmt.Sprintf("grid%d", i)] = proc*100 + instance + i
	}
	s.Vars = vars
	return s
}

// BenchmarkSaveBytesPruned pins the payload reduction and save latency of
// manifest-pruned checkpoints against full-environment ones, per store
// kind. payload_B/op is the serialized snapshot size each save persists;
// for the incremental store delta_B/op additionally shows how much smaller
// the delta chain gets when dead variables never enter it. BENCH_store.json
// records the results via scripts/bench.sh; `-no-prune` on the CLIs
// reproduces the full-lane byte counts end to end.
func BenchmarkSaveBytesPruned(b *testing.B) {
	for _, kind := range []string{"file", "incremental", "wal"} {
		for _, mode := range []string{"full", "pruned"} {
			b.Run(kind+"/"+mode, func(b *testing.B) {
				st := benchStore(b, kind)
				pruned := mode == "pruned"
				sample, err := json.Marshal(pruneBenchSnap(0, 1_000_000, pruned))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := st.Save(pruneBenchSnap(0, i, pruned)); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(len(sample)), "payload_B/op")
				if inc, ok := st.(*storage.Incremental); ok {
					stats := inc.Stats()
					b.ReportMetric(float64(stats.FullBytes+stats.DeltaBytes)/float64(b.N), "delta_B/op")
				}
			})
		}
	}
}

// BenchmarkStoreSingleSave measures uncontended save latency — one saver,
// no batching opportunity.
func BenchmarkStoreSingleSave(b *testing.B) {
	for _, kind := range []string{"wal", "file"} {
		b.Run(kind, func(b *testing.B) {
			st := benchStore(b, kind)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := st.Save(benchSnap(0, i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
