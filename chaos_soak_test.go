package repro_test

// Chaos soak: the acceptance test of the robustness layer. Seeded runs
// combining storage fault injection (transient errors, torn writes, bit
// flips, latency) with generated multi-process, multi-incarnation crash
// schedules must all converge to the clean run's final state, across all
// four store kinds — and the fleet as a whole must actually exercise the
// fault machinery (faults injected, retries taken, degraded recoveries
// observed, with matching observability events).
//
// Under -short the seed matrix shrinks (which also sidesteps the
// fleet-wide coverage assertions) instead of skipping outright; `make
// chaos` runs the full matrix with -race. SOAK_SEEDS overrides the seed
// count (CI uses a smaller matrix).

import (
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/storage/wal"
)

func TestChaosSoak(t *testing.T) {
	// -short trims the matrix to a few seeds rather than skipping; the
	// per-seed convergence checks all still run, and fleetAssertions sees
	// the shrunken count and skips only the fleet-wide coverage bars.
	defSeeds := 24
	if testing.Short() {
		defSeeds = 4
	}
	rep, err := core.Transform(corpus.JacobiFig2(3), core.DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	prog := rep.Program
	const n = 3
	clean, err := sim.Run(sim.Config{Program: prog, Nproc: n, Timeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// Jacobi keeps every variable live at its checkpoint sites, so a third
	// of the seeds run master/worker instead, whose sites have genuinely
	// dead variables — the matrix must crash and recover from snapshots the
	// liveness pass actually shrank.
	repMW, err := core.Transform(corpus.MasterWorker(n), core.DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	progMW := repMW.Program
	cleanMW, err := sim.Run(sim.Config{Program: progMW, Nproc: n, Timeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}

	// Fleet-wide aggregates: individual seeds may draw empty schedules or
	// dodge every fault, but across the default 24 seeds the machinery
	// must fire.
	seeds := int64(soakSeeds(t, defSeeds))
	checkFleet := fleetAssertions(t, int(seeds), 24)
	var (
		mu                                                      sync.Mutex
		totalFaults, totalRetries, totalDegraded, totalRestarts int64
		totalPruneSaved                                         int64
	)
	kinds := map[obs.Kind]int{}
	// The per-seed runs are independent — every chaos decision is hashed
	// from (seed, class, key, attempt), never from cross-seed state or
	// scheduling — so they soak in parallel. Each seed's convergence check
	// against the serial clean run asserts the results are unchanged by
	// the interleaving. The enclosing group subtest completes only after
	// all parallel seeds finish, so the fleet assertions below see the
	// full aggregates.
	t.Run("seeds", func(t *testing.T) {
		for seed := int64(0); seed < seeds; seed++ {
			t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
				t.Parallel()
				var inner storage.Store
				switch seed % 4 {
				case 0:
					inner = storage.NewMemory()
				case 1:
					inner = storage.NewIncremental(4)
				case 2:
					fs, err := storage.NewFile(filepath.Join(t.TempDir(), "ckpt"))
					if err != nil {
						t.Fatal(err)
					}
					inner = fs
				default:
					ws, err := wal.Open(filepath.Join(t.TempDir(), "wal"), wal.Options{Shards: 4})
					if err != nil {
						t.Fatal(err)
					}
					defer ws.Close()
					inner = ws
				}
				rates := chaos.DefaultRates(0.12)
				if seed%2 == 1 {
					// Rot-heavy profile: with a large fraction of snapshots damaged
					// on disk, the recovery frontier itself is corrupt and selection
					// must walk down the degradation ladder. (At the default rates
					// a flipped checkpoint is usually shadowed by a newer clean
					// instance before any crash probes it.)
					rates = chaos.Rates{WriteError: 0.05, ReadError: 0.05, TornWrite: 0.05, BitFlip: 0.4}
				}
				rec := obs.NewRecorder()
				cst := chaos.New(inner, seed, rates, rec)
				crashes := chaos.CrashSchedule(seed, chaos.ScheduleConfig{
					Nproc: n, Lambda: 1.2, MaxIncarnations: 3, MaxEvents: 35,
				})
				// Every fifth seed runs the full-environment A/B lane: crash
				// convergence must not depend on snapshots being pruned.
				noPrune := seed%5 == 4
				p, cleanVars := prog, clean.FinalVars
				if seed%3 == 2 {
					p, cleanVars = progMW, cleanMW.FinalVars
				}
				res, err := sim.Run(sim.Config{
					Program:  p,
					Nproc:    n,
					Store:    cst,
					Crashes:  crashes,
					Observer: rec,
					NoPrune:  noPrune,
					Jitter:   seed,
					// Storage faults crash processes beyond the schedule; give
					// recovery generous headroom.
					MaxRestarts: len(crashes) + 25,
					Timeout:     20 * time.Second,
				})
				if err != nil {
					t.Fatalf("seed %d (%T): %v (schedule %v)", seed, inner, err, crashes)
				}
				if !reflect.DeepEqual(cleanVars, res.FinalVars) {
					t.Fatalf("seed %d (%T): diverged under chaos\nclean: %v\nchaos: %v",
						seed, inner, cleanVars, res.FinalVars)
				}
				if noPrune && res.Metrics.Custom[sim.MetricPruneBytesFull] != 0 {
					t.Fatalf("seed %d: NoPrune run still recorded prune accounting: %v",
						seed, res.Metrics.Custom)
				}
				st := cst.Stats()
				mu.Lock()
				totalFaults += st.Total()
				totalRetries += int64(res.Metrics.Custom[sim.MetricStoreRetries])
				totalDegraded += int64(res.Metrics.Custom[sim.MetricRecoveryDegraded])
				totalPruneSaved += int64(res.Metrics.Custom[sim.MetricPruneBytesSaved])
				totalRestarts += int64(res.Restarts)
				for _, e := range rec.Events() {
					kinds[e.Kind]++
				}
				mu.Unlock()
			})
		}
	})
	if t.Failed() {
		return
	}

	if !checkFleet {
		return
	}
	if totalFaults == 0 {
		t.Error("fleet injected no storage faults — the chaos layer never fired")
	}
	if totalRetries == 0 {
		t.Error("fleet recorded no storage retries")
	}
	if totalDegraded == 0 {
		t.Error("fleet recorded no degraded recoveries — corruption never forced a fallback")
	}
	if totalRestarts == 0 {
		t.Error("fleet recorded no restarts — the crash schedules never fired")
	}
	if totalPruneSaved == 0 {
		t.Error("fleet saved no bytes to manifest pruning — the liveness-minimized lane never fired")
	}
	for _, want := range []obs.Kind{obs.KindFault, obs.KindRetry, obs.KindScrub, obs.KindDegraded} {
		if kinds[want] == 0 {
			t.Errorf("no %q events across the fleet: %v", want, kinds)
		}
	}
}
