// MPMD demonstrates the paper's Multiple Program Multiple Data extension
// (§3): a master program and a worker program written separately are
// merged into one SPMD program whose top level is an ID-dependent guard
// chain, then flow through the same three phases. The merged program's
// checkpoint placements straddle the task/result messages; the
// transformation repairs them, and a crashed worker recovers from a
// straight cut.
package main

import (
	"fmt"
	"log"
	"reflect"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/mpl"
	"repro/internal/mpmd"
	"repro/internal/sim"
)

const masterSrc = `
program master
var task, result, acc, w
proc {
    task = 7
    chkpt
    w = 1
    while w < nproc {
        send(w, task)
        w = w + 1
    }
    w = 1
    while w < nproc {
        recv(w, result)
        acc = acc + result
        w = w + 1
    }
}
`

const workerSrc = `
program worker
var task, result
proc {
    recv(0, task)
    result = task * rank
    send(0, result)
    chkpt
}
`

func main() {
	master, err := mpl.Parse(masterSrc)
	if err != nil {
		log.Fatal(err)
	}
	worker, err := mpl.Parse(workerSrc)
	if err != nil {
		log.Fatal(err)
	}

	merged, err := mpmd.Merge("masterworker", []mpmd.Role{
		{Name: "master", Guard: mpl.Eq(mpl.Rank(), mpl.Int(0)), Program: master},
		{Name: "worker", Guard: mpl.Neq(mpl.Rank(), mpl.Int(0)), Program: worker},
	}, attr.DefaultSolver)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("merged SPMD program:")
	fmt.Println(mpl.Format(merged))

	rep, err := core.Transform(merged, core.DefaultConfig)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transformation: %d violation(s), %d move(s), %d equalized\n\n",
		len(rep.Phase3.InitialViolations), len(rep.Phase3.Moves), len(rep.Phase3.EqualizedStmts))

	const n = 5
	clean, err := sim.Run(sim.Config{Program: rep.Program, Nproc: n})
	if err != nil {
		log.Fatal(err)
	}
	crashed, err := sim.Run(sim.Config{
		Program:  rep.Program,
		Nproc:    n,
		Failures: []sim.Failure{{Proc: 3, AfterEvents: 3}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("master acc = %d (want 7·(1+2+3+4) = 70)\n", clean.FinalVars[0]["acc"])
	fmt.Printf("crashed-worker run: restarts=%d, acc = %d\n", crashed.Restarts, crashed.FinalVars[0]["acc"])
	if reflect.DeepEqual(clean.FinalVars, crashed.FinalVars) {
		fmt.Println("results identical ✓")
	} else {
		fmt.Println("RESULTS DIVERGED ✗")
	}
}
