// Protocols compares the checkpointing protocols of the paper's §4.1 on
// the same master/worker workload: the application-driven (coordination-
// free) scheme, synchronize-and-stop (SaS), Chandy-Lamport snapshots, and
// communication-induced checkpointing — reporting the coordination traffic
// each one pays per checkpoint and verifying that all deliver consistent
// recovery lines.
package main

import (
	"fmt"
	"log"

	"repro/internal/corpus"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/storage"
)

func main() {
	const n, rounds = 6, 3
	prog := corpus.MasterWorker(rounds)

	type entry struct {
		name  string
		hooks sim.HooksFactory
	}
	entries := []entry{
		{"appl-driven", nil},
		{"SaS", protocol.SaS(0)},
		{"C-L", protocol.CL(0, protocol.NewCLCollector())},
		{"CIC", protocol.CIC()},
	}

	fmt.Printf("%-12s %8s %8s %8s %8s\n", "protocol", "ckpts", "forced", "ctrl", "ctrl/ckpt")
	for _, e := range entries {
		res, err := sim.Run(sim.Config{Program: prog, Nproc: n, Hooks: e.hooks})
		if err != nil {
			log.Fatalf("%s: %v", e.name, err)
		}
		m := res.Metrics
		perCkpt := float64(m.CtrlMessages) / float64(m.TotalCheckpoints())
		fmt.Printf("%-12s %8d %8d %8d %8.2f", e.name, m.Checkpoints, m.Forced, m.CtrlMessages, perCkpt)
		if ok, bad := allIndexCutsConsistent(res.Store, n); ok {
			fmt.Printf("   all cuts consistent ✓\n")
		} else {
			fmt.Printf("   INCONSISTENT cut at index %d ✗\n", bad)
		}
	}
}

// allIndexCutsConsistent checks every complete checkpoint index in stable
// storage for pairwise happened-before freedom.
func allIndexCutsConsistent(st storage.Store, n int) (bool, int) {
	indexes, err := st.Indexes(n)
	if err != nil {
		return false, -1
	}
	for _, idx := range indexes {
		cut := make([]storage.Snapshot, n)
		for p := 0; p < n; p++ {
			s, err := st.Latest(p, idx)
			if err != nil {
				return false, idx
			}
			cut[p] = s
		}
		for i := range cut {
			for j := range cut {
				if i != j && cut[i].Clock.Before(cut[j].Clock) {
					return false, idx
				}
			}
		}
	}
	return true, 0
}
