// Stencil runs a five-point 2D stencil on a process grid — the
// bread-and-butter HPC workload behind the paper's Jacobi example — with a
// column-skewed checkpoint placement: even columns checkpoint before the
// halo exchange, odd columns after. Straight cuts of checkpoints are then
// NOT recovery lines (demonstrated on a real execution and by the static
// analysis); Phase III repairs the placement, the zigzag analysis
// certifies every checkpoint useful, and a crash at the grid center
// recovers to bit-identical results.
package main

import (
	"fmt"
	"log"
	"reflect"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/zigzag"
)

func main() {
	const width, iters, n = 3, 3, 9
	skewed := corpus.StencilSkewed(width, iters)

	fmt.Println("=== skewed placement (even columns checkpoint before the exchange) ===")
	res, err := sim.Run(sim.Config{Program: skewed, Nproc: n})
	if err != nil {
		log.Fatal(err)
	}
	bad := 0
	for _, idx := range res.Trace.CheckpointIndexes() {
		cut, err := res.Trace.StraightCut(idx)
		if err != nil {
			continue
		}
		if !trace.IsRecoveryLine(cut) {
			bad++
		}
	}
	fmt.Printf("straight cuts violated on a real run: %d\n", bad)
	violations, err := core.Verify(skewed, core.DefaultConfig)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static analysis violations: %d\n", len(violations))

	fmt.Println()
	fmt.Println("=== after Phase III ===")
	rep, err := core.Transform(skewed, core.DefaultConfig)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range rep.Phase3.Moves {
		fmt.Println("move:", m.Reason)
	}
	clean, err := sim.Run(sim.Config{Program: rep.Program, Nproc: n})
	if err != nil {
		log.Fatal(err)
	}
	analysis, err := zigzag.FromTrace(clean.Trace)
	if err != nil {
		log.Fatal(err)
	}
	stats := analysis.Stats()
	fmt.Printf("checkpoints: %d, on Z-cycles (useless): %d — every checkpoint is usable\n",
		stats.Total, stats.Useless)

	crashed, err := sim.Run(sim.Config{
		Program:  rep.Program,
		Nproc:    n,
		Failures: []sim.Failure{{Proc: 4, AfterEvents: 25}}, // grid center
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crash at the grid center: restarts=%d, identical results: %v\n",
		crashed.Restarts, reflect.DeepEqual(clean.FinalVars, crashed.FinalVars))
	for r := 0; r < n; r++ {
		fmt.Printf("  cell %d: u=%d\n", r, clean.FinalVars[r]["u"])
	}
}
