// Quickstart: write a small SPMD program, run the offline transformation
// (the paper's three phases), execute it on the concurrent runtime with a
// crash injected, and watch it recover from a straight cut of checkpoints
// with zero runtime coordination.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mpl"
	"repro/internal/sim"
	"repro/internal/trace"
)

const src = `
program quickstart

const STEPS = 4

var sum, tmp, i

proc {
    sum = rank
    i = 0
    while i < STEPS {
        # Even ranks checkpoint before talking, odd ones after - a
        # placement where straight cuts are NOT recovery lines.
        if rank % 2 == 0 {
            chkpt
            send(rank + 1, sum)
            recv(rank + 1, tmp)
        } else {
            recv(rank - 1, tmp)
            send(rank - 1, sum)
            chkpt
        }
        sum = sum + tmp
        i = i + 1
    }
}
`

func main() {
	prog, err := mpl.Parse(src)
	if err != nil {
		log.Fatal(err)
	}

	// Offline analysis: is the original placement safe?
	violations, err := core.Verify(prog, core.DefaultConfig)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original program: %d Condition-1 violation(s)\n", len(violations))

	// Phases I-III: repair the placement.
	rep, err := core.Transform(prog, core.DefaultConfig)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transformed with %d checkpoint move(s):\n\n%s\n",
		len(rep.Phase3.Moves), mpl.Format(rep.Program))

	// Execute on 4 processes with a crash after 20 events on rank 2.
	res, err := sim.Run(sim.Config{
		Program:  rep.Program,
		Nproc:    4,
		Failures: []sim.Failure{{Proc: 2, AfterEvents: 20}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run complete: restarts=%d, metrics: %s\n", res.Restarts, res.Metrics)
	for p, vars := range res.FinalVars {
		fmt.Printf("  rank %d: sum=%d\n", p, vars["sum"])
	}

	// Every straight cut in stable storage is a recovery line: compare the
	// vector clocks of the latest i-th checkpoints pairwise.
	indexes, err := res.Store.Indexes(4)
	if err != nil {
		log.Fatal(err)
	}
	for _, idx := range indexes {
		cut := make(trace.Cut, 0, 4)
		for p := 0; p < 4; p++ {
			s, err := res.Store.Latest(p, idx)
			if err != nil {
				log.Fatal(err)
			}
			cut = append(cut, trace.Checkpoint{Proc: p, CFGIndex: idx, Instance: s.Instance, Clock: s.Clock})
		}
		fmt.Printf("straight cut R_%d is a recovery line: %v\n", idx, trace.IsRecoveryLine(cut))
	}
}
