// Jacobi reproduces the paper's running example end to end:
//
//   - Figure 1: the canonical Jacobi program whose straight cuts of
//     checkpoints are recovery lines as written;
//   - Figure 2/3: the variant where even ranks checkpoint before the
//     neighbor exchange and odd ranks after, making every straight cut
//     inconsistent — demonstrated on a real execution;
//   - Figure 4: the extended CFG with message edges (printed as Graphviz
//     dot);
//   - §3.3: Algorithm 3.2 repairs the variant while keeping the
//     checkpoints inside the loop, verified on a re-run.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/mpl"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	const n = 4

	fmt.Println("=== Figure 1: checkpoints at the same place ===")
	fig1 := corpus.JacobiFig1(3)
	report(fig1, n)

	fmt.Println()
	fmt.Println("=== Figure 2: odd ranks checkpoint after the exchange ===")
	fig2 := corpus.JacobiFig2(3)
	report(fig2, n)

	fmt.Println()
	fmt.Println("=== Figure 4: extended CFG of the Figure 2 program ===")
	dot, err := core.ExtendedDOT(fig2, core.DefaultConfig)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(dot)

	fmt.Println("=== Algorithm 3.2: repairing Figure 2 ===")
	rep, err := core.Transform(fig2, core.DefaultConfig)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range rep.Phase3.Moves {
		fmt.Printf("move: %s\n", m.Reason)
	}
	fmt.Println()
	fmt.Println(mpl.Format(rep.Program))
	report(rep.Program, n)
}

// report executes the program and prints whether each straight cut of the
// recorded trace is a recovery line (Definition 2.1 via vector clocks).
func report(p *mpl.Program, n int) {
	res, err := sim.Run(sim.Config{Program: p, Nproc: n})
	if err != nil {
		log.Fatal(err)
	}
	for _, idx := range res.Trace.CheckpointIndexes() {
		cut, err := res.Trace.StraightCut(idx)
		if err != nil {
			fmt.Printf("R_%d: incomplete\n", idx)
			continue
		}
		if trace.IsRecoveryLine(cut) {
			fmt.Printf("R_%d: recovery line\n", idx)
		} else {
			a, b, _ := trace.FirstViolation(cut)
			fmt.Printf("R_%d: INCONSISTENT — %v happened before %v (the paper's Figure 3)\n", idx, a, b)
		}
	}
}
