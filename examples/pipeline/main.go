// Pipeline models the long-running staged computation the paper's
// introduction motivates (grid / massively parallel applications): the
// lower half of the machine produces data each step, the upper half
// consumes it. The untransformed checkpoint placement straddles the
// producer-consumer messages; the transformation repairs it, and the run
// then survives a cascade of injected crashes with bit-identical results
// and zero coordination messages.
package main

import (
	"fmt"
	"log"
	"reflect"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/sim"
)

func main() {
	const n = 6
	prog := corpus.PipelineStages(5)

	rep, err := core.Transform(prog, core.DefaultConfig)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transformation: %d violation(s) repaired with %d move(s)\n",
		len(rep.Phase3.InitialViolations), len(rep.Phase3.Moves))

	clean, err := sim.Run(sim.Config{Program: rep.Program, Nproc: n})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failure-free run:  %s\n", clean.Metrics)

	crashed, err := sim.Run(sim.Config{
		Program: rep.Program,
		Nproc:   n,
		Failures: []sim.Failure{
			{Proc: 1, AfterEvents: 15},
			{Proc: 4, AfterEvents: 10},
			{Proc: 0, AfterEvents: 5},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with 3 crashes:    %s (restarts=%d)\n", crashed.Metrics, crashed.Restarts)

	if reflect.DeepEqual(clean.FinalVars, crashed.FinalVars) {
		fmt.Println("results identical across failure schedules ✓")
	} else {
		fmt.Println("RESULTS DIVERGED ✗")
	}
	if crashed.Metrics.CtrlMessages == 0 {
		fmt.Println("zero coordination messages, as promised ✓")
	}
	for p, vars := range clean.FinalVars {
		fmt.Printf("  rank %d: data=%d\n", p, vars["data"])
	}
}
