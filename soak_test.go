package repro_test

// Soak coverage: the paper's safety theorem exercised across random
// programs, process counts, schedules, and crash points simultaneously.
// -short runs a trimmed matrix; bounded to keep the default suite fast.

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/mpl"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/zigzag"
)

func TestSoakTransformedRandomPrograms(t *testing.T) {
	// -short trims the matrix rather than skipping: a handful of seeds at
	// two process counts still walks the whole transform-run-check-crash
	// path, so a quick `go test -short` cannot silently rot it.
	lastSeed, budget, nprocs := int64(140), 45*time.Second, []int{2, 4, 7}
	if testing.Short() {
		lastSeed, budget, nprocs = 104, 10*time.Second, []int{2, 4}
	}
	input := func(rank, i int) int { return 3*rank + i }
	deadline := time.Now().Add(budget)
	seeds := 0
	for seed := int64(100); seed < lastSeed && time.Now().Before(deadline); seed++ {
		seeds++
		prog := corpus.Random(seed)
		rep, err := core.Transform(prog, core.DefaultConfig)
		if err != nil {
			t.Fatalf("seed %d: transform: %v\n%s", seed, err, mpl.Format(prog))
		}
		for _, n := range nprocs {
			// Clean run under a seeded schedule perturbation.
			clean, err := sim.Run(sim.Config{
				Program: rep.Program, Nproc: n, Input: input,
				Jitter: seed, Timeout: 20 * time.Second,
			})
			if err != nil {
				t.Fatalf("seed %d n=%d: %v\n%s", seed, n, err, mpl.Format(rep.Program))
			}
			// Theorem 3.2 on the trace.
			for _, idx := range clean.Trace.CheckpointIndexes() {
				cut, err := clean.Trace.StraightCut(idx)
				if err != nil {
					continue
				}
				if !trace.IsRecoveryLine(cut) {
					t.Fatalf("seed %d n=%d: R_%d violated\n%s",
						seed, n, idx, mpl.Format(rep.Program))
				}
			}
			// No useless checkpoints.
			zz, err := zigzag.FromTrace(clean.Trace)
			if err != nil {
				t.Fatalf("seed %d n=%d: %v", seed, n, err)
			}
			if u := zz.Useless(); len(u) != 0 {
				t.Fatalf("seed %d n=%d: useless checkpoints %v", seed, n, u)
			}
			// Crash at two different points: identical results.
			for _, after := range []int{7, 19} {
				crashed, err := sim.Run(sim.Config{
					Program: rep.Program, Nproc: n, Input: input,
					Failures: []sim.Failure{{Proc: int(seed+int64(after)) % n, AfterEvents: after}},
					Jitter:   seed + int64(after),
					Timeout:  20 * time.Second,
				})
				if err != nil {
					t.Fatalf("seed %d n=%d after=%d: %v", seed, n, after, err)
				}
				if !reflect.DeepEqual(clean.FinalVars, crashed.FinalVars) {
					t.Fatalf("seed %d n=%d after=%d: crash run diverged", seed, n, after)
				}
			}
		}
	}
	t.Logf("soaked %d random programs", seeds)
}
