package repro_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dataflow"
	"repro/internal/insert"
	"repro/internal/markov"
	"repro/internal/match"
	"repro/internal/montecarlo"
	"repro/internal/mpl"
	"repro/internal/place"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/verify"
)

// BenchmarkFigure8 regenerates the paper's Figure 8 (overhead ratio vs
// number of processes for appl-driven, SaS, and C-L) on every iteration
// and reports the endpoint ratios as custom metrics. Run with -v to see
// the full series printed once.
func BenchmarkFigure8(b *testing.B) {
	var pts []markov.Point
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = markov.Figure8(markov.PaperBaseline, markov.DefaultFigure8Ns())
		if err != nil {
			b.Fatal(err)
		}
	}
	last := pts[len(pts)-1]
	b.ReportMetric(last.ApplDriven, "r(appl,n=1024)")
	b.ReportMetric(last.SaS, "r(SaS,n=1024)")
	b.ReportMetric(last.CL, "r(C-L,n=1024)")
	if testing.Verbose() {
		b.Logf("Figure 8 series:\n%s", formatPoints("n", pts))
	}
}

// BenchmarkFigure9 regenerates Figure 9 (overhead ratio vs message setup
// time w_m at n=64): the appl-driven curve is flat, SaS and C-L degrade.
func BenchmarkFigure9(b *testing.B) {
	var pts []markov.Point
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = markov.Figure9(markov.PaperBaseline, 64, markov.DefaultFigure9WMs())
		if err != nil {
			b.Fatal(err)
		}
	}
	last := pts[len(pts)-1]
	b.ReportMetric(last.ApplDriven, "r(appl,wm=0.1)")
	b.ReportMetric(last.SaS, "r(SaS,wm=0.1)")
	b.ReportMetric(last.CL, "r(C-L,wm=0.1)")
	if testing.Verbose() {
		b.Logf("Figure 9 series (n=64):\n%s", formatPoints("w_m", pts))
	}
}

func formatPoints(x string, pts []markov.Point) string {
	out := fmt.Sprintf("%-10s %-12s %-12s %-12s\n", x, "appl-driven", "SaS", "C-L")
	for _, pt := range pts {
		out += fmt.Sprintf("%-10.4g %-12.6g %-12.6g %-12.6g\n", pt.X, pt.ApplDriven, pt.SaS, pt.CL)
	}
	return out
}

// BenchmarkFigure7Chain times the generic absorbing-chain solution of the
// paper's Figure 7 model against the closed form it must equal.
func BenchmarkFigure7Chain(b *testing.B) {
	p := markov.PaperBaseline.ParamsFor(markov.SaS, 256)
	for i := 0; i < b.N; i++ {
		if _, err := markov.GammaFromChain(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonteCarloValidation cross-validates the analytic overhead
// ratio by stochastic simulation (the "extra" experiment of DESIGN.md).
func BenchmarkMonteCarloValidation(b *testing.B) {
	base := markov.PaperBaseline
	base.Lambda1 = 1e-4 // visible failure counts at bench-scale trials
	var rows []montecarlo.ValidationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = montecarlo.ValidateFigure8(base, []int{2, 64}, 20000, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range rows {
		if testing.Verbose() {
			b.Logf("%v n=%d analytic=%.6g simulated=%s", row.Protocol, row.N, row.Analytic, row.Simulated)
		}
	}
}

// BenchmarkMessagesPerCheckpoint measures real coordination traffic per
// checkpoint round on the concurrent runtime for each protocol — the
// empirical counterpart of the M(SaS) and M(C-L) formulas.
func BenchmarkMessagesPerCheckpoint(b *testing.B) {
	const n, iters = 8, 2
	prog := corpus.JacobiFig1(iters)
	run := func(hooks sim.HooksFactory) int64 {
		res, err := sim.Run(sim.Config{Program: prog, Nproc: n, Hooks: hooks, DisableTrace: true})
		if err != nil {
			b.Fatal(err)
		}
		return res.Metrics.CtrlMessages / iters
	}
	var appl, sas, cl int64
	for i := 0; i < b.N; i++ {
		appl = run(nil)
		sas = run(protocol.SaS(0))
		cl = run(protocol.CL(0, protocol.NewCLCollector()))
	}
	b.ReportMetric(float64(appl), "ctrl/ckpt(appl)")
	b.ReportMetric(float64(sas), "ctrl/ckpt(SaS)")
	b.ReportMetric(float64(cl), "ctrl/ckpt(C-L)")
}

// BenchmarkTransformPipeline times the full offline analysis (phases
// I-III) across the program corpus.
func BenchmarkTransformPipeline(b *testing.B) {
	progs := corpus.All()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, p := range progs {
			if _, err := core.Transform(p, core.DefaultConfig); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTransformPipelineLarge is BenchmarkTransformPipeline over
// generated large programs (deep loop nests, an order of magnitude more
// statements than the corpus) — the scaling story for the same pipeline.
func BenchmarkTransformPipelineLarge(b *testing.B) {
	var progs []*mpl.Program
	for seed := int64(1); seed <= 8; seed++ {
		progs = append(progs, verify.GenerateLarge(seed, 6))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range progs {
			if _, err := core.Transform(p, core.DefaultConfig); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Per-phase sub-benchmarks: each isolates one stage of the transform so a
// regression in the aggregate pipeline benchmark can be attributed.

// BenchmarkPipelineCFGBuild times CFG construction alone across the corpus.
func BenchmarkPipelineCFGBuild(b *testing.B) {
	progs := corpus.All()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, p := range progs {
			if _, err := cfg.Build(p); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkPipelineMatch times Phase II (extended-CFG matching) across the
// corpus, with graphs and dataflow results prebuilt outside the timer.
func BenchmarkPipelineMatch(b *testing.B) {
	type input struct {
		p  *mpl.Program
		g  *cfg.Graph
		df *dataflow.Result
	}
	var inputs []input
	for _, p := range corpus.All() {
		g, err := cfg.Build(p)
		if err != nil {
			b.Fatal(err)
		}
		inputs = append(inputs, input{p: p, g: g, df: dataflow.Analyze(p)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, in := range inputs {
			if _, err := match.Match(in.p, in.g, in.df, match.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkPipelinePlace times Phase III (the move-reanalyze fixpoint) on
// Phase-I-applied programs, checkpoint insertion done outside the timer.
func BenchmarkPipelinePlace(b *testing.B) {
	var progs []*mpl.Program
	for _, p := range corpus.All() {
		work := mpl.Clone(p)
		if _, err := insert.InsertCheckpoints(work, insert.DefaultCostModel); err != nil {
			b.Fatal(err)
		}
		progs = append(progs, work)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range progs {
			opts := place.DefaultOptions
			opts.Arena = &cfg.Arena{}
			if _, err := place.Ensure(p, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkRuntimeFailureRecovery times a full run including one crash and
// a straight-cut recovery.
func BenchmarkRuntimeFailureRecovery(b *testing.B) {
	rep, err := core.Transform(corpus.JacobiFig2(4), core.DefaultConfig)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := sim.Run(sim.Config{
			Program:      rep.Program,
			Nproc:        4,
			DisableTrace: true,
			Failures:     []sim.Failure{{Proc: 1, AfterEvents: 20}},
			Timeout:      20 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
