package repro_test

// Fleet chaos soak: the acceptance test of the fleet engine. Seeded runs
// drive hundreds of concurrent checkpointed jobs each against one shared
// store under storage faults, injected crashes, lossy links, and business
// failures, and every run must balance the books exactly: arrivals ==
// admitted + rejected, and every admitted job lands in exactly ONE
// taxonomy bucket (succeeded / infra_failed / business_failed / parked).
// Across the full matrix at least 1000 jobs must be admitted, the drain
// must complete within its deadline, and a dedicated brownout scenario
// must prove the shared-store circuit breaker opens AND recovers through
// half-open probes.
//
// Under -short the matrix shrinks (which also sidesteps the fleet-wide
// volume bars) instead of skipping outright; `make fleet` runs the full
// matrix with -race. SOAK_SEEDS overrides the chaos-scenario count.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/storage"
	"repro/internal/storage/wal"
)

// brownoutStore fails every operation transiently for a wall-clock window
// starting at its first op. Time-based on purpose: while the breaker is
// open, sheds never reach the store, so an op-counted window would never
// drain.
type brownoutStore struct {
	storage.Store
	dur   time.Duration
	mu    sync.Mutex
	start time.Time
}

func (w *brownoutStore) browned() error {
	w.mu.Lock()
	if w.start.IsZero() {
		w.start = time.Now()
	}
	brown := time.Since(w.start) < w.dur
	w.mu.Unlock()
	if brown {
		return storage.ErrTransient
	}
	return nil
}

func (w *brownoutStore) Save(s storage.Snapshot) error {
	if err := w.browned(); err != nil {
		return err
	}
	return w.Store.Save(s)
}

func (w *brownoutStore) Latest(proc, cfgIndex int) (storage.Snapshot, error) {
	if err := w.browned(); err != nil {
		return storage.Snapshot{}, err
	}
	return w.Store.Latest(proc, cfgIndex)
}

func TestFleetSoak(t *testing.T) {
	defSeeds := 4
	jobsPerSeed := 300
	if testing.Short() {
		defSeeds = 2
		jobsPerSeed = 40
	}
	seeds := soakSeeds(t, defSeeds)
	fullMatrix := fleetAssertions(t, seeds, 4) && !testing.Short()

	var (
		mu            sync.Mutex
		totalAdmitted int64
		totalRejected int64
		buckets       = map[string]int64{}
	)
	runScenario := func(t *testing.T, cfg fleet.Config) *fleet.Report {
		t.Helper()
		e := fleet.New(cfg)
		rep, err := e.Run()
		if err != nil {
			// Run errors exactly when conservation fails: a silent loss.
			t.Fatalf("seed %d: %v\n%s", cfg.Seed, err, rep)
		}
		if !rep.Conserved() {
			t.Fatalf("seed %d: not conserved:\n%s", cfg.Seed, rep)
		}
		if rep.DrainParked {
			t.Fatalf("seed %d: drain deadline expired — jobs outlived the generous deadline:\n%s", cfg.Seed, rep)
		}
		if rep.DrainDur > cfg.DrainTimeout+5*time.Second {
			t.Fatalf("seed %d: drain took %v against a %v deadline:\n%s",
				cfg.Seed, rep.DrainDur, cfg.DrainTimeout, rep)
		}
		mu.Lock()
		totalAdmitted += rep.Admitted
		totalRejected += rep.RejectedTotal()
		for b, n := range rep.Buckets {
			buckets[b] += n
		}
		mu.Unlock()
		return rep
	}

	chaosCfg := func(seed int64) fleet.Config {
		return fleet.Config{
			Jobs:        jobsPerSeed,
			MaxInFlight: 32,
			// Paced so admission keeps up: the soak measures robustness, not
			// rejection volume (capacity rejection has its own scenario).
			ArrivalRate:      800,
			Seed:             seed,
			StorageFaultRate: 0.04,
			CrashLambda:      0.4,
			NetFaultRate:     0.01,
			BusinessFailRate: 0.1,
			Tenants: []fleet.TenantConfig{
				{Name: "batch", Quota: 24, Weight: 3},
				{Name: "interactive", Weight: 1},
			},
			DrainTimeout: 60 * time.Second,
			JobTimeout:   20 * time.Second,
		}
	}

	// The chaos scenarios are independent seeded fleets; soak them in
	// parallel. The enclosing group completes before the volume bars below.
	t.Run("chaos", func(t *testing.T) {
		for seed := int64(0); seed < int64(seeds); seed++ {
			t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
				t.Parallel()
				runScenario(t, chaosCfg(seed))
			})
		}
	})
	if t.Failed() {
		return
	}

	// Breaker scenario: a brownout covering the stream's start must trip
	// the breaker (pacing load off the shared store) and, once the window
	// passes, the breaker must recover via half-open probes so later
	// arrivals run clean.
	t.Run("breaker", func(t *testing.T) {
		st := &brownoutStore{Store: storage.NewMemory(), dur: 30 * time.Millisecond}
		cfg := fleet.Config{
			Jobs: 60, MaxInFlight: 8, Iters: 10, Seed: 99, Store: st,
			ArrivalRate: 400,
			Breaker: fleet.BreakerConfig{
				FailureThreshold: 3,
				Cooldown:         time.Millisecond,
			},
			DrainTimeout: 60 * time.Second,
			JobTimeout:   20 * time.Second,
		}
		e := fleet.New(cfg)
		rep, err := e.Run()
		if err != nil {
			t.Fatalf("breaker scenario: %v\n%s", err, rep)
		}
		if rep.Breaker.Opened == 0 {
			t.Fatalf("breaker never opened through the brownout:\n%s", rep)
		}
		if got := e.Breaker().State(); got != fleet.StateClosed {
			t.Fatalf("breaker state = %d after the store healed, want closed (half-open recovery)\n%s", got, rep)
		}
		if rep.Buckets[fleet.BucketSucceeded] == 0 {
			t.Fatalf("no job survived the brownout:\n%s", rep)
		}
		mu.Lock()
		totalAdmitted += rep.Admitted
		for b, n := range rep.Buckets {
			buckets[b] += n
		}
		mu.Unlock()
	})

	// WAL-store scenario: the whole fleet — admission, retry, breaker,
	// namespaces — runs against the durable group-commit log instead of a
	// memory store, under the same chaos profile. The books must still
	// balance and every acked save must have hit the committer. (Batch
	// amortization itself is pinned by TestGroupCommitBatches; Batches
	// vs Saves is not an invariant here because scrub tombstones commit
	// in batches of their own.)
	t.Run("walstore", func(t *testing.T) {
		ws, err := wal.Open(t.TempDir(), wal.Options{Shards: 8})
		if err != nil {
			t.Fatal(err)
		}
		defer ws.Close()
		cfg := chaosCfg(4242)
		cfg.Store = ws
		rep := runScenario(t, cfg)
		if rep.Buckets[fleet.BucketSucceeded] == 0 {
			t.Fatalf("no job succeeded against the WAL store:\n%s", rep)
		}
		st := ws.Stats()
		if st.Saves == 0 {
			t.Fatalf("fleet ran but the WAL store saw no saves: %+v", st)
		}
		if st.Batches == 0 {
			t.Errorf("saves acked but no group commit recorded: %+v", st)
		}
		t.Logf("wal under fleet: %d saves in %d group commits", st.Saves, st.Batches)
	})

	// Overload scenario: back-to-back arrivals into a tiny fleet must be
	// REJECTED, not queued — and rejection is loss-accounted, not silent.
	t.Run("overload", func(t *testing.T) {
		rep := runScenario(t, fleet.Config{
			Jobs: 100, MaxInFlight: 2, Iters: 50, Seed: 7,
			DrainTimeout: 60 * time.Second, JobTimeout: 20 * time.Second,
		})
		if rep.Rejected[fleet.ReasonFleetCapacity] == 0 {
			t.Errorf("overloaded fleet rejected nothing:\n%s", rep)
		}
	})
	if t.Failed() {
		return
	}

	// Top-up to the acceptance volume: the soak must witness >= 1000
	// admitted jobs under chaos in the full matrix.
	if fullMatrix {
		for extra := int64(100); totalAdmitted < 1000 && extra < 120; extra++ {
			cfg := chaosCfg(extra)
			cfg.Jobs = 200
			runScenario(t, cfg)
		}
		if totalAdmitted < 1000 {
			t.Fatalf("soak admitted only %d jobs, want >= 1000", totalAdmitted)
		}
		// The taxonomy must have real mass in every class the scenarios
		// provoke: successes, business failures, and (from overload)
		// rejections.
		if buckets[fleet.BucketSucceeded] == 0 || buckets[fleet.BucketBusinessFailed] == 0 {
			t.Errorf("taxonomy coverage hole: %v", buckets)
		}
		if totalRejected == 0 {
			t.Error("no rejections across the matrix — admission control never pushed back")
		}
		var sum int64
		for _, n := range buckets {
			sum += n
		}
		if sum != totalAdmitted {
			t.Fatalf("SILENT LOSS: %d admitted but %d bucketed (%v)", totalAdmitted, sum, buckets)
		}
	}
	t.Logf("fleet soak: admitted=%d rejected=%d buckets=%v", totalAdmitted, totalRejected, buckets)
}
